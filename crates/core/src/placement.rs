//! Deterministic replication placement.
//!
//! Pesos maps objects to disks through a deterministic hash of the object
//! key over the ordered list of drives: the primary is selected by the hash,
//! and the `N-1` replicas go to the following positions
//! `D(i+1), D(i+2), ..., D(i+N-1)` (paper §4.5). No replication metadata
//! needs to be kept; on drive failure the next available drive in the
//! sequence is used.

use std::cell::Cell;

use pesos_crypto::sha256;

/// The deterministic key hash everything placement-related derives from:
/// drive selection, metadata lock shards and object-cache shards all use
/// this same value, so state for one key always lives behind the same
/// shard index regardless of the structure consulted.
pub fn key_hash(key: &str) -> u64 {
    let digest = sha256(key.as_bytes());
    let mut h = [0u8; 8];
    // pesos-lint: allow(panic_freedom, "sha256 digests are 32 bytes")
    h.copy_from_slice(&digest[..8]);
    u64::from_be_bytes(h)
}

/// The *placement group* of a key: its directory-style prefix up to (and
/// excluding) the first occurrence of `delimiter`, or the full key when the
/// key contains no delimiter, starts with it (an empty prefix would lump
/// unrelated keys into one group), or no delimiter is configured.
///
/// Keys in the same placement group always route to the same cluster
/// partition, which is what makes object-referencing policies (`objSays`
/// over `<key>.log`, MAL-style) evaluable against the owning partition's
/// store on any topology: with the default `'.'` delimiter, `<key>`,
/// `<key>.log` and `<key>.v2` all share the group `<key>`.
pub fn routing_prefix(key: &str, delimiter: Option<char>) -> &str {
    let Some(delimiter) = delimiter else {
        return key;
    };
    match key.find(delimiter) {
        Some(0) | None => key,
        // pesos-lint: allow(panic_freedom, "at is an index find() returned on this key")
        Some(at) => &key[..at],
    }
}

/// The routing hash of `key`: [`key_hash`] of its [`routing_prefix`].
///
/// The cluster layer partitions the key space by *this* value, while drive
/// placement, caches and lock shards keep using the full-key [`key_hash`] —
/// the split that lets sibling objects co-route without perturbing any
/// single-controller structure. For keys that are their own placement group
/// the two hashes coincide and no extra digest is ever paid.
pub fn routing_hash(key: &str, delimiter: Option<char>) -> u64 {
    let prefix = routing_prefix(key, delimiter);
    if prefix.len() == key.len() {
        key_hash(key)
    } else {
        key_hash(prefix)
    }
}

/// An object key bundled with its [`key_hash`], computed exactly once.
///
/// One request consults several hash-keyed structures — drive placement,
/// the metadata map shard, the object-cache shard, the key-lock registry —
/// and each of them used to recompute the SHA-256 key hash from scratch.
/// The controller now builds a `HashedKey` when the request enters and
/// threads it through every layer, so the digest is paid once per request
/// regardless of how many structures are touched.
///
/// `From<&str>` keeps call sites that have only a bare key (tests, external
/// store users) working: conversion computes the hash, so a bare `&str`
/// argument is exactly the old behaviour.
///
/// The key's *routing hash* — [`key_hash`] over its placement-group prefix,
/// by which the cluster layer partitions the key space — is computed lazily
/// on first use and cached ([`HashedKey::routing_hash`]), so requests that
/// never cross the cluster router (the whole single-controller surface)
/// never pay for it. The cache cell is why `HashedKey` is `Clone` but not
/// `Copy`; pass `&HashedKey` (every `impl Into<HashedKey>` parameter
/// accepts it) to reuse one computation across layers.
#[derive(Debug, Clone)]
pub struct HashedKey<'a> {
    key: &'a str,
    hash: u64,
    /// `(delimiter, routing hash)` memo of the last `routing_hash` call; a
    /// cluster uses one delimiter for its lifetime, so in practice this is
    /// computed at most once per request.
    routing: Cell<Option<(Option<char>, u64)>>,
}

impl<'a> HashedKey<'a> {
    /// Hashes `key` once and caches the result.
    pub fn new(key: &'a str) -> Self {
        HashedKey {
            key,
            hash: key_hash(key),
            routing: Cell::new(None),
        }
    }

    /// Reassembles a `HashedKey` from a key and its previously computed
    /// [`key_hash`]. The pair is trusted: a mismatched hash would corrupt
    /// shard selection and drive placement for the key (the object would
    /// be written where no lookup ever finds it), so only pass back a
    /// value obtained from [`HashedKey::hash`] for the *same* key. Used
    /// where a request crosses an ownership boundary (into an async or
    /// migration-drain closure) and only the raw parts can travel; debug
    /// builds verify the pair, release builds trust it (re-hashing would
    /// defeat the point).
    pub fn from_parts(key: &'a str, hash: u64) -> Self {
        debug_assert_eq!(hash, key_hash(key), "hash does not belong to {key:?}");
        HashedKey {
            key,
            hash,
            routing: Cell::new(None),
        }
    }

    /// The cluster-routing hash of this key: [`key_hash`] over the key's
    /// [`routing_prefix`] under `delimiter`. Computed on first use and
    /// cached; keys that are their own placement group reuse the already
    /// cached full-key hash, costing nothing.
    pub fn routing_hash(&self, delimiter: Option<char>) -> u64 {
        let prefix = routing_prefix(self.key, delimiter);
        if prefix.len() == self.key.len() {
            return self.hash;
        }
        if let Some((memo_delim, memo_hash)) = self.routing.get() {
            if memo_delim == delimiter {
                return memo_hash;
            }
        }
        let hash = key_hash(prefix);
        self.routing.set(Some((delimiter, hash)));
        hash
    }

    /// The object key.
    pub fn key(&self) -> &'a str {
        self.key
    }

    /// The cached [`key_hash`] value.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Maps this key to one of `shards` lock-shard indices.
    ///
    /// Every sharded structure (metadata map, object cache, key-lock
    /// registry) selects shards through this one function so their shard
    /// choice can never drift apart.
    pub fn shard(&self, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        (self.hash % shards as u64) as usize
    }
}

impl pesos_policy::ShardKey for HashedKey<'_> {
    /// Sharded structures keyed by object keys select shards from the
    /// cached placement hash — the same value [`HashedKey::shard`] uses —
    /// so generic [`pesos_policy::Sharded`] containers and the hand-rolled
    /// `shard()` methods they replaced can never disagree.
    fn shard_hint(&self) -> u64 {
        self.hash
    }
}

impl<'a> From<&'a str> for HashedKey<'a> {
    fn from(key: &'a str) -> Self {
        HashedKey::new(key)
    }
}

impl<'a> From<&'a String> for HashedKey<'a> {
    fn from(key: &'a String) -> Self {
        HashedKey::new(key)
    }
}

impl<'a> From<&HashedKey<'a>> for HashedKey<'a> {
    fn from(key: &HashedKey<'a>) -> Self {
        key.clone()
    }
}

/// Maps `key` to one of `shards` lock-shard indices using [`key_hash`].
///
/// Convenience wrapper over [`HashedKey::shard`] for callers without a
/// precomputed hash.
pub fn shard_index(key: &str, shards: usize) -> usize {
    HashedKey::new(key).shard(shards)
}

/// Returns the ordered drive indices holding `key`: the primary first, then
/// the replicas, `replication_factor` entries in total (capped at the number
/// of drives).
pub fn placement<'a>(
    key: impl Into<HashedKey<'a>>,
    drive_count: usize,
    replication_factor: usize,
) -> Vec<usize> {
    if drive_count == 0 {
        return Vec::new();
    }
    let factor = replication_factor.clamp(1, drive_count);
    let primary = (key.into().hash() % drive_count as u64) as usize;
    (0..factor).map(|i| (primary + i) % drive_count).collect()
}

/// Like [`placement`] but skips drives reported offline, extending the probe
/// sequence so the replication factor is preserved when possible.
pub fn placement_available<'a>(
    key: impl Into<HashedKey<'a>>,
    drive_count: usize,
    replication_factor: usize,
    online: &[usize],
) -> Vec<usize> {
    if drive_count == 0 || online.is_empty() {
        return Vec::new();
    }
    let factor = replication_factor.clamp(1, drive_count);
    let primary = (key.into().hash() % drive_count as u64) as usize;

    // One O(drives) membership mask instead of an `online.contains` linear
    // scan per probed slot (which made the probe loop quadratic in the
    // drive count when most drives were offline). Realistic cluster sizes
    // fit a stack bitmask, keeping this per-request path allocation-free;
    // only very large clusters pay for a heap-allocated mask.
    enum Mask {
        Small(u128),
        Large(Vec<bool>),
    }
    let mask = if drive_count <= 128 {
        let mut mask: u128 = 0;
        for &idx in online {
            if idx < drive_count {
                mask |= 1 << idx;
            }
        }
        Mask::Small(mask)
    } else {
        let mut mask = vec![false; drive_count];
        for &idx in online {
            if idx < drive_count {
                // pesos-lint: allow(panic_freedom, "mask is sized to drive_count and idx is guarded above")
                mask[idx] = true;
            }
        }
        Mask::Large(mask)
    };
    let is_online = |idx: usize| match &mask {
        Mask::Small(m) => m & (1 << idx) != 0,
        // pesos-lint: allow(panic_freedom, "is_online is only called with drive indices below drive_count")
        Mask::Large(v) => v[idx],
    };

    let mut out = Vec::with_capacity(factor);
    for offset in 0..drive_count {
        let idx = (primary + offset) % drive_count;
        if is_online(idx) {
            out.push(idx);
            if out.len() == factor {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_and_in_range() {
        for key in ["a", "b", "users/alice", "a-very-long-object-key-0123456789"] {
            let a = placement(key, 5, 3);
            let b = placement(key, 5, 3);
            assert_eq!(a, b);
            assert_eq!(a.len(), 3);
            assert!(a.iter().all(|&i| i < 5));
        }
    }

    #[test]
    fn replicas_are_consecutive_and_distinct() {
        let p = placement("some-key", 4, 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p[1], (p[0] + 1) % 4);
        assert_eq!(p[2], (p[0] + 2) % 4);
        let unique: std::collections::HashSet<_> = p.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn factor_is_capped_at_drive_count() {
        assert_eq!(placement("k", 2, 5).len(), 2);
        assert_eq!(placement("k", 1, 1), vec![0]);
        assert!(placement("k", 0, 1).is_empty());
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let drives = 4;
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for i in 0..4000 {
            let p = placement(&format!("user{i}"), drives, 1);
            *counts.entry(p[0]).or_default() += 1;
        }
        for d in 0..drives {
            let c = counts.get(&d).copied().unwrap_or(0);
            assert!(
                (700..=1300).contains(&c),
                "drive {d} got {c} of 4000 objects"
            );
        }
    }

    #[test]
    fn hashed_key_matches_direct_key_hash() {
        for key in ["", "a", "users/alice", "a-very-long-object-key-0123456789"] {
            let hashed = HashedKey::new(key);
            assert_eq!(hashed.hash(), key_hash(key));
            assert_eq!(hashed.key(), key);
            for shards in [1usize, 2, 7, 16, 64] {
                assert_eq!(hashed.shard(shards), shard_index(key, shards));
            }
            // Placement through a precomputed hash is identical to placement
            // from the bare key.
            assert_eq!(placement(&hashed, 5, 3), placement(key, 5, 3));
            assert_eq!(
                placement_available(&hashed, 5, 3, &[0, 2, 4]),
                placement_available(key, 5, 3, &[0, 2, 4])
            );
        }
    }

    #[test]
    fn routing_prefix_cuts_at_the_first_delimiter_only() {
        let d = Some('.');
        // Siblings share the group of their base key.
        assert_eq!(routing_prefix("doc", d), "doc");
        assert_eq!(routing_prefix("doc.log", d), "doc");
        assert_eq!(routing_prefix("doc.v2", d), "doc");
        // First-delimiter rule: a dotted base key still groups with its
        // suffixed siblings ("a.b" and "a.b.log" both cut to "a").
        assert_eq!(routing_prefix("a.b", d), "a");
        assert_eq!(routing_prefix("a.b.log", d), "a");
        // Edge cases route by the full key: no delimiter in the key, a
        // leading delimiter (empty prefix), a delimiter-only key, the empty
        // key, and a configuration with no delimiter at all.
        assert_eq!(routing_prefix("users/alice", d), "users/alice");
        assert_eq!(routing_prefix(".log", d), ".log");
        assert_eq!(routing_prefix(".", d), ".");
        assert_eq!(routing_prefix("", d), "");
        assert_eq!(routing_prefix("doc.log", None), "doc.log");
        // Trailing delimiter: the prefix is the key minus the dot, so
        // "doc." groups with "doc".
        assert_eq!(routing_prefix("doc.", d), "doc");
    }

    #[test]
    fn routing_hash_groups_siblings_and_caches() {
        let d = Some('.');
        for (a, b) in [
            ("doc", "doc.log"),
            ("doc", "doc.v2"),
            ("a.b", "a.b.log"),
            ("medical/record-7", "medical/record-7.log"),
        ] {
            assert_eq!(routing_hash(a, d), routing_hash(b, d), "{a} vs {b}");
        }
        // Full-key fallbacks equal the plain key hash.
        for key in ["users/alice", ".log", ".", "", "doc"] {
            assert_eq!(routing_hash(key, d), key_hash(key), "{key}");
            assert_eq!(routing_hash(key, None), key_hash(key), "{key}");
        }
        // Distinct groups stay distinct.
        assert_ne!(routing_hash("doc", d), routing_hash("dot", d));

        // The cached form agrees with the free function, for every shape.
        for key in ["doc", "doc.log", ".log", ".", "", "a.b.log", "x."] {
            let hashed = HashedKey::new(key);
            assert_eq!(hashed.routing_hash(d), routing_hash(key, d), "{key}");
            // Second call answers from the memo (same value).
            assert_eq!(hashed.routing_hash(d), routing_hash(key, d), "{key}");
            // A different delimiter recomputes rather than serving a stale
            // memo.
            assert_eq!(
                hashed.routing_hash(Some('/')),
                routing_hash(key, Some('/')),
                "{key}"
            );
            assert_eq!(hashed.routing_hash(None), key_hash(key), "{key}");
        }
    }

    #[test]
    fn placement_available_scales_to_many_drives() {
        // 2000 drives with only a sparse tail online: the boolean mask keeps
        // this O(drives); the old per-probe `contains` scan was O(drives²).
        let drive_count = 2000;
        let online: Vec<usize> = (0..drive_count).filter(|i| i % 37 == 0).collect();
        for i in 0..50 {
            let key = format!("obj/{i}");
            let p = placement_available(&key, drive_count, 3, &online);
            assert_eq!(p.len(), 3);
            assert!(p.iter().all(|idx| idx % 37 == 0));
            // The probe order is preserved: each selected drive is the next
            // online drive at or after the previous selection.
            let primary = (key_hash(&key) % drive_count as u64) as usize;
            let expected: Vec<usize> = (0..drive_count)
                .map(|off| (primary + off) % drive_count)
                .filter(|idx| idx % 37 == 0)
                .take(3)
                .collect();
            assert_eq!(p, expected);
        }
        // Out-of-range indices in the online list are ignored, not a panic.
        assert_eq!(
            placement_available("k", 4, 2, &[1, 9999]),
            placement_available("k", 4, 2, &[1])
        );
    }

    #[test]
    fn failure_falls_through_to_next_available() {
        let all = placement("obj", 4, 2);
        // Take the primary offline.
        let online: Vec<usize> = (0..4).filter(|i| *i != all[0]).collect();
        let p = placement_available("obj", 4, 2, &online);
        assert_eq!(p.len(), 2);
        assert!(!p.contains(&all[0]));
        assert_eq!(p[0], (all[0] + 1) % 4);

        // With only one drive online the factor degrades gracefully.
        let p = placement_available("obj", 4, 3, &[2]);
        assert_eq!(p, vec![2]);
        assert!(placement_available("obj", 4, 2, &[]).is_empty());
    }
}
