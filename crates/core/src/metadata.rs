//! Per-object metadata maintained by the controller.
//!
//! Pesos stores each object's policy association and per-version facts
//! (size, content hash, policy hash) as part of the object metadata
//! (paper §1, §3.3). The metadata record is persisted on the Kinetic drives
//! next to the object data and is what the `objSize`, `objHash`,
//! `objPolicy`, `currVersion` and `objId` predicates consult.

use std::collections::HashMap;

use parking_lot::RwLock;
use pesos_policy::PolicyId;
use pesos_wire::codec::{FieldReader, FieldWriter};

use crate::error::PesosError;

/// How many historical version entries are retained per object.
pub const MAX_VERSION_HISTORY: usize = 128;

/// Facts about one stored version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionMeta {
    /// The version number.
    pub version: u64,
    /// Size of the plaintext value in bytes.
    pub size: u64,
    /// SHA-256 of the plaintext value.
    pub value_hash: Vec<u8>,
    /// Hash (identifier) of the policy associated at this version.
    pub policy_hash: Vec<u8>,
}

/// The metadata record for one object key.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObjectMetadata {
    /// The object key.
    pub key: String,
    /// The latest stored version.
    pub latest_version: u64,
    /// Identifier of the associated policy, if any.
    pub policy_id: Option<PolicyId>,
    /// Per-version facts, most recent last, bounded to
    /// [`MAX_VERSION_HISTORY`] entries.
    pub versions: Vec<VersionMeta>,
}

impl ObjectMetadata {
    /// Creates metadata for a new object.
    pub fn new(key: impl Into<String>) -> Self {
        ObjectMetadata {
            key: key.into(),
            ..ObjectMetadata::default()
        }
    }

    /// Records a new version, trimming history beyond the retention bound.
    pub fn record_version(&mut self, meta: VersionMeta) {
        self.latest_version = meta.version;
        self.versions.push(meta);
        if self.versions.len() > MAX_VERSION_HISTORY {
            let excess = self.versions.len() - MAX_VERSION_HISTORY;
            self.versions.drain(0..excess);
        }
    }

    /// Looks up the facts for a specific version.
    pub fn version(&self, version: u64) -> Option<&VersionMeta> {
        self.versions.iter().rev().find(|v| v.version == version)
    }

    /// Facts of the latest version.
    pub fn latest(&self) -> Option<&VersionMeta> {
        self.versions.last()
    }

    /// Serializes the record for storage on a drive.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = FieldWriter::new();
        w.string(1, &self.key);
        w.uint64(2, self.latest_version);
        if let Some(id) = &self.policy_id {
            w.bytes(3, &id.0);
        }
        for v in &self.versions {
            let mut vw = FieldWriter::new();
            vw.uint64(1, v.version)
                .uint64(2, v.size)
                .bytes(3, &v.value_hash)
                .bytes(4, &v.policy_hash);
            w.message(4, &vw);
        }
        w.finish()
    }

    /// Parses a stored record.
    pub fn from_bytes(data: &[u8]) -> Result<Self, PesosError> {
        let corrupt = |m: &str| PesosError::Backend(format!("corrupt metadata: {m}"));
        let fields = FieldReader::new(data)
            .collect_fields()
            .map_err(|e| corrupt(&e.to_string()))?;
        let mut meta = ObjectMetadata::default();
        for f in fields {
            match f.number {
                1 => {
                    meta.key = f
                        .as_str()
                        .map_err(|_| corrupt("key not UTF-8"))?
                        .to_string()
                }
                2 => meta.latest_version = f.value,
                3 => {
                    if f.data.len() == 32 {
                        let mut id = [0u8; 32];
                        id.copy_from_slice(f.data);
                        meta.policy_id = Some(PolicyId(id));
                    } else {
                        return Err(corrupt("policy id length"));
                    }
                }
                4 => {
                    let mut v = VersionMeta {
                        version: 0,
                        size: 0,
                        value_hash: Vec::new(),
                        policy_hash: Vec::new(),
                    };
                    for vf in FieldReader::new(f.data)
                        .collect_fields()
                        .map_err(|e| corrupt(&e.to_string()))?
                    {
                        match vf.number {
                            1 => v.version = vf.value,
                            2 => v.size = vf.value,
                            3 => v.value_hash = vf.data.to_vec(),
                            4 => v.policy_hash = vf.data.to_vec(),
                            _ => {}
                        }
                    }
                    meta.versions.push(v);
                }
                _ => {}
            }
        }
        if meta.key.is_empty() {
            return Err(corrupt("missing key"));
        }
        Ok(meta)
    }
}

/// The in-enclave metadata map, sharded to keep concurrent sessions on
/// different keys from contending on one global lock.
///
/// Shards are selected by [`crate::placement::key_hash`] — the same hash
/// that drives replica placement — so all state for a key (metadata shard,
/// cache shard, drive set) derives from one hash computation and keys that
/// never share a shard never share a lock. Callers on the request hot path
/// pass a precomputed [`HashedKey`] so the shard selection costs a modulo,
/// not a fresh SHA-256 of the key. Built on the generic
/// [`crate::sharded::Sharded`] container; `RwLock` cells keep the warm
/// read path (`get`) shared.
pub struct ShardedMetadata {
    shards: Sharded<RwLock<HashMap<String, ObjectMetadata>>>,
}

use crate::placement::HashedKey;
use crate::sharded::Sharded;

impl ShardedMetadata {
    /// Creates a map with `shards` lock shards (at least one).
    pub fn new(shards: usize) -> Self {
        ShardedMetadata {
            shards: Sharded::new_indexed(shards, |i| {
                RwLock::with_rank_indexed(
                    parking_lot::lock_order::METADATA_SHARD,
                    i,
                    HashMap::new(),
                )
            }),
        }
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    fn shard(&self, key: &HashedKey<'_>) -> &RwLock<HashMap<String, ObjectMetadata>> {
        self.shards.get(key)
    }

    /// Returns a clone of the metadata for `key`, if cached.
    pub fn get<'a>(&self, key: impl Into<HashedKey<'a>>) -> Option<ObjectMetadata> {
        let key = key.into();
        self.shard(&key).read().get(key.key()).cloned()
    }

    /// Inserts (or replaces) the metadata for `meta.key`; `key` should be
    /// the hashed form of that same key (saving a digest). A mismatched
    /// pair is a caller bug — debug builds assert; release builds fall back
    /// to hashing `meta.key` itself so the record still lands in the shard
    /// where lookups will find it, instead of becoming unreachable.
    pub fn insert<'a>(&self, key: impl Into<HashedKey<'a>>, meta: ObjectMetadata) {
        let key = key.into();
        debug_assert_eq!(key.key(), meta.key, "hashed key does not match record");
        let shard = if key.key() == meta.key {
            self.shard(&key)
        } else {
            self.shard(&HashedKey::new(&meta.key))
        };
        shard.write().insert(meta.key.clone(), meta);
    }

    /// Removes the metadata for `key`.
    pub fn remove<'a>(&self, key: impl Into<HashedKey<'a>>) {
        let key = key.into();
        self.shard(&key).write().remove(key.key());
    }

    /// Total number of cached metadata records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// The names of every cached record, in no particular order. Used by
    /// the cluster's load-aware rebalancer to pick a weighted split point;
    /// an in-memory snapshot (not drive-authoritative), which is all load
    /// accounting needs.
    pub fn keys(&self) -> Vec<String> {
        self.shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Whether no metadata is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Backend key under which an object's data for `version` is stored.
pub fn data_key(key: &str, version: u64) -> Vec<u8> {
    format!("o/{key}/{version:020}").into_bytes()
}

/// Backend key under which an object's metadata record is stored.
pub fn meta_key(key: &str) -> Vec<u8> {
    format!("m/{key}").into_bytes()
}

/// Backend key under which a compiled policy is stored.
pub fn policy_key(id_hex: &str) -> Vec<u8> {
    format!("p/{id_hex}").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObjectMetadata {
        let mut m = ObjectMetadata::new("users/alice");
        m.policy_id = Some(PolicyId([7u8; 32]));
        m.record_version(VersionMeta {
            version: 0,
            size: 10,
            value_hash: vec![1; 32],
            policy_hash: vec![2; 32],
        });
        m.record_version(VersionMeta {
            version: 1,
            size: 20,
            value_hash: vec![3; 32],
            policy_hash: vec![2; 32],
        });
        m
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let decoded = ObjectMetadata::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn version_lookup() {
        let m = sample();
        assert_eq!(m.latest_version, 1);
        assert_eq!(m.version(0).unwrap().size, 10);
        assert_eq!(m.latest().unwrap().size, 20);
        assert!(m.version(9).is_none());
    }

    #[test]
    fn history_is_bounded() {
        let mut m = ObjectMetadata::new("k");
        for v in 0..(MAX_VERSION_HISTORY as u64 + 50) {
            m.record_version(VersionMeta {
                version: v,
                size: v,
                value_hash: vec![],
                policy_hash: vec![],
            });
        }
        assert_eq!(m.versions.len(), MAX_VERSION_HISTORY);
        assert_eq!(m.latest_version, MAX_VERSION_HISTORY as u64 + 49);
        // The oldest entries were trimmed.
        assert!(m.version(0).is_none());
    }

    #[test]
    fn corrupt_records_rejected() {
        assert!(ObjectMetadata::from_bytes(b"nonsense").is_err());
        assert!(ObjectMetadata::from_bytes(&[]).is_err());
    }

    #[test]
    fn backend_keys_are_namespaced_and_ordered() {
        assert!(String::from_utf8(data_key("a", 3))
            .unwrap()
            .starts_with("o/a/"));
        assert_eq!(meta_key("a"), b"m/a".to_vec());
        assert!(String::from_utf8(policy_key("ff00"))
            .unwrap()
            .starts_with("p/"));
        // Zero-padded versions sort correctly as byte strings.
        assert!(data_key("a", 2) < data_key("a", 10));
    }
}
