//! The object-store request surface, abstracted over deployment shape.
//!
//! A single [`PesosController`] and a multi-controller cluster expose the
//! same client-facing operations; [`RequestEndpoint`] captures that surface
//! so harnesses (the YCSB runner, benchmarks, examples) drive either
//! without caring how many controllers sit behind it. The trait is
//! object-safe — harness code holds an `Arc<dyn RequestEndpoint>`.

use std::sync::Arc;

use pesos_crypto::Certificate;
use pesos_policy::PolicyId;

use crate::controller::PesosController;
use crate::error::PesosError;

/// Anything that serves Pesos client requests: one controller, or a cluster
/// of them.
pub trait RequestEndpoint: Send + Sync {
    /// Registers a client by a stable identifier and opens its session.
    fn register_client(&self, client_id: &str) -> String;

    /// Installs a policy and returns its identifier.
    fn put_policy(&self, client_id: &str, source: &str) -> Result<PolicyId, PesosError>;

    /// Stores an object (optionally associating a policy); returns the new
    /// version.
    fn put(
        &self,
        client_id: &str,
        key: &str,
        value: Vec<u8>,
        policy_id: Option<PolicyId>,
        expected_version: Option<u64>,
        certificates: &[Certificate],
    ) -> Result<u64, PesosError>;

    /// Stores an object asynchronously; returns the operation identifier.
    fn put_async(
        &self,
        client_id: &str,
        key: &str,
        value: Vec<u8>,
        policy_id: Option<PolicyId>,
        expected_version: Option<u64>,
        certificates: &[Certificate],
    ) -> Result<u64, PesosError>;

    /// Retrieves the latest version of an object.
    fn get(
        &self,
        client_id: &str,
        key: &str,
        certificates: &[Certificate],
    ) -> Result<(Arc<Vec<u8>>, u64), PesosError>;

    /// Deletes an object.
    fn delete(
        &self,
        client_id: &str,
        key: &str,
        certificates: &[Certificate],
    ) -> Result<(), PesosError>;

    /// The latest stored version of `key`, if the object exists (used by
    /// versioned-store harness modes to derive the expected next version).
    ///
    /// Best-effort contract: this is a metadata probe, not a client
    /// operation — it runs no policy checks and, on a cluster, does not
    /// demand-pull the key out of an in-flight migration. Implementations
    /// must still never report an existing object as missing: the cluster
    /// probes a migrating key's destination and then its source under the
    /// migration's key stripe lock, so a key mid-move is observed on
    /// exactly one side. What may lag is the *version*: a write that
    /// commits concurrently with the probe can be reflected or not,
    /// exactly as for any unsynchronized reader.
    fn latest_version(&self, key: &str) -> Option<u64>;

    /// Waits (bounded) for all scheduled asynchronous work to finish.
    fn drain_async(&self);
}

impl RequestEndpoint for PesosController {
    fn register_client(&self, client_id: &str) -> String {
        PesosController::register_client(self, client_id)
    }

    fn put_policy(&self, client_id: &str, source: &str) -> Result<PolicyId, PesosError> {
        PesosController::put_policy(self, client_id, source)
    }

    fn put(
        &self,
        client_id: &str,
        key: &str,
        value: Vec<u8>,
        policy_id: Option<PolicyId>,
        expected_version: Option<u64>,
        certificates: &[Certificate],
    ) -> Result<u64, PesosError> {
        PesosController::put(
            self,
            client_id,
            key,
            value,
            policy_id,
            expected_version,
            certificates,
        )
    }

    fn put_async(
        &self,
        client_id: &str,
        key: &str,
        value: Vec<u8>,
        policy_id: Option<PolicyId>,
        expected_version: Option<u64>,
        certificates: &[Certificate],
    ) -> Result<u64, PesosError> {
        PesosController::put_async(
            self,
            client_id,
            key,
            value,
            policy_id,
            expected_version,
            certificates,
        )
    }

    fn get(
        &self,
        client_id: &str,
        key: &str,
        certificates: &[Certificate],
    ) -> Result<(Arc<Vec<u8>>, u64), PesosError> {
        PesosController::get(self, client_id, key, certificates)
    }

    fn delete(
        &self,
        client_id: &str,
        key: &str,
        certificates: &[Certificate],
    ) -> Result<(), PesosError> {
        PesosController::delete(self, client_id, key, certificates)
    }

    fn latest_version(&self, key: &str) -> Option<u64> {
        self.store().get_metadata(key).map(|m| m.latest_version)
    }

    fn drain_async(&self) {
        PesosController::drain_async(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerConfig;

    #[test]
    fn controller_serves_through_the_trait_object() {
        let controller =
            Arc::new(PesosController::new(ControllerConfig::native_simulator(1)).unwrap());
        let endpoint: Arc<dyn RequestEndpoint> = controller;
        endpoint.register_client("alice");
        endpoint
            .put("alice", "k", b"v1".to_vec(), None, None, &[])
            .unwrap();
        assert_eq!(endpoint.latest_version("k"), Some(0));
        let (value, version) = endpoint.get("alice", "k", &[]).unwrap();
        assert_eq!(&**value, b"v1");
        assert_eq!(version, 0);
        let op = endpoint
            .put_async("alice", "k", b"v2".to_vec(), None, None, &[])
            .unwrap();
        endpoint.drain_async();
        assert!(op > 0);
        assert_eq!(endpoint.latest_version("k"), Some(1));
        endpoint.delete("alice", "k", &[]).unwrap();
        assert_eq!(endpoint.latest_version("k"), None);
        assert!(endpoint.put_policy("alice", "read :- eq(1, 1)").is_ok());
    }
}
