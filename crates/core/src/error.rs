//! Controller error type.

use std::fmt;

use pesos_kinetic::KineticError;
use pesos_policy::PolicyError;
use pesos_sgx::SgxError;
use pesos_wire::WireError;

/// Errors surfaced by the Pesos controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PesosError {
    /// The policy associated with the object denied the operation.
    PolicyDenied(String),
    /// The requested object does not exist.
    ObjectNotFound(String),
    /// The referenced policy does not exist.
    PolicyNotFound(String),
    /// The supplied version did not match (versioned update conflict).
    VersionConflict { expected: u64, got: u64 },
    /// A transaction failed or was aborted.
    TransactionAborted(String),
    /// The outcome of an operation is no longer (or not yet) retained;
    /// unlike [`PesosError::TransactionAborted`] this says nothing about
    /// whether the operation succeeded.
    ResultUnavailable(String),
    /// The request was malformed.
    BadRequest(String),
    /// The client session is unknown or expired.
    NoSession(String),
    /// A backend drive reported an error.
    Backend(String),
    /// Bootstrap or attestation failed.
    Bootstrap(String),
    /// The controller owning the request's range is (temporarily) down.
    /// Unlike [`PesosError::Backend`] this is retryable: the cluster layer
    /// re-resolves routing and retries with backoff, because a failover may
    /// promote a backup for the range at any moment.
    Unavailable(String),
    /// A topology change was refused because a pending migration must be
    /// settled (or has failed to settle) first.
    MigrationPending(String),
}

impl fmt::Display for PesosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PesosError::PolicyDenied(msg) => write!(f, "policy denied: {msg}"),
            PesosError::ObjectNotFound(key) => write!(f, "object not found: {key}"),
            PesosError::PolicyNotFound(id) => write!(f, "policy not found: {id}"),
            PesosError::VersionConflict { expected, got } => {
                write!(f, "version conflict: expected {expected}, got {got}")
            }
            PesosError::TransactionAborted(msg) => write!(f, "transaction aborted: {msg}"),
            PesosError::ResultUnavailable(msg) => write!(f, "result unavailable: {msg}"),
            PesosError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            PesosError::NoSession(msg) => write!(f, "no session: {msg}"),
            PesosError::Backend(msg) => write!(f, "backend error: {msg}"),
            PesosError::Bootstrap(msg) => write!(f, "bootstrap failed: {msg}"),
            PesosError::Unavailable(msg) => write!(f, "controller unavailable: {msg}"),
            PesosError::MigrationPending(msg) => write!(f, "migration pending: {msg}"),
        }
    }
}

impl PesosError {
    /// The REST status this error maps to on the wire; shared by the
    /// controller's dispatcher and the cluster router so a request answered
    /// by either layer reports failures identically.
    pub fn rest_status(&self) -> pesos_wire::RestStatus {
        use pesos_wire::RestStatus;
        match self {
            PesosError::PolicyDenied(_) => RestStatus::PolicyDenied,
            PesosError::ObjectNotFound(_)
            | PesosError::PolicyNotFound(_)
            | PesosError::ResultUnavailable(_) => RestStatus::NotFound,
            PesosError::VersionConflict { .. } | PesosError::TransactionAborted(_) => {
                RestStatus::Conflict
            }
            PesosError::BadRequest(_) | PesosError::NoSession(_) => RestStatus::BadRequest,
            PesosError::Backend(_) | PesosError::Bootstrap(_) | PesosError::Unavailable(_) => {
                RestStatus::BackendError
            }
            PesosError::MigrationPending(_) => RestStatus::Conflict,
        }
    }

    /// Builds the REST failure response for this error.
    pub fn rest_response(&self) -> pesos_wire::RestResponse {
        pesos_wire::RestResponse::failure(self.rest_status(), self.to_string())
    }
}

impl std::error::Error for PesosError {}

impl From<KineticError> for PesosError {
    fn from(e: KineticError) -> Self {
        match e {
            KineticError::NotFound => PesosError::ObjectNotFound("<backend key>".to_string()),
            other => PesosError::Backend(other.to_string()),
        }
    }
}

impl From<PolicyError> for PesosError {
    fn from(e: PolicyError) -> Self {
        PesosError::BadRequest(format!("policy error: {e}"))
    }
}

impl From<SgxError> for PesosError {
    fn from(e: SgxError) -> Self {
        PesosError::Bootstrap(e.to_string())
    }
}

impl From<WireError> for PesosError {
    fn from(e: WireError) -> Self {
        PesosError::BadRequest(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PesosError = KineticError::NotFound.into();
        assert!(matches!(e, PesosError::ObjectNotFound(_)));
        let e: PesosError = KineticError::NoSpace.into();
        assert!(matches!(e, PesosError::Backend(_)));
        let e: PesosError = PolicyError::UnknownPredicate("x".into()).into();
        assert!(matches!(e, PesosError::BadRequest(_)));
        assert!(PesosError::VersionConflict {
            expected: 1,
            got: 2
        }
        .to_string()
        .contains("1"));
    }

    #[test]
    fn failover_variants_map_to_rest_statuses() {
        use pesos_wire::RestStatus;
        let e = PesosError::Unavailable("controller 2 failed".into());
        assert_eq!(e.rest_status(), RestStatus::BackendError);
        assert!(e.to_string().contains("unavailable"));
        let e = PesosError::MigrationPending("range [0,10) still draining".into());
        assert_eq!(e.rest_status(), RestStatus::Conflict);
        assert!(e.to_string().contains("migration pending"));
    }
}
