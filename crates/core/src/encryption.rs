//! Transparent object encryption.
//!
//! Pesos encrypts every object with AES-GCM before it leaves the enclave for
//! a Kinetic drive (paper §2.2); the evaluation measures the overhead at
//! roughly 1.5 % for 1 KiB objects. The [`ObjectCrypter`] derives a per-key
//! AEAD key from the provisioned storage master secret and binds the object
//! key and version as associated data so ciphertexts cannot be replayed
//! under a different name or version by the untrusted provider.

use std::sync::atomic::{AtomicU64, Ordering};

use pesos_crypto::{AeadKey, CryptoError};

/// Encrypts and decrypts object payloads.
pub struct ObjectCrypter {
    key: AeadKey,
    enabled: bool,
    counter: AtomicU64,
}

impl ObjectCrypter {
    /// Creates a crypter from the provisioned storage master key.
    pub fn new(master_key: &[u8; 32], enabled: bool) -> Self {
        ObjectCrypter {
            key: AeadKey::new(master_key),
            enabled,
            counter: AtomicU64::new(1),
        }
    }

    /// Whether encryption is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn aad(object_key: &str, version: u64) -> Vec<u8> {
        let mut aad = Vec::with_capacity(object_key.len() + 8);
        aad.extend_from_slice(object_key.as_bytes());
        aad.extend_from_slice(&version.to_be_bytes());
        aad
    }

    /// Encrypts `plaintext` for storage as `object_key` at `version`.
    ///
    /// When encryption is disabled the plaintext is passed through with a
    /// one-byte marker so that [`ObjectCrypter::unseal`] stays symmetric.
    pub fn seal(&self, object_key: &str, version: u64, plaintext: &[u8]) -> Vec<u8> {
        if !self.enabled {
            let mut out = Vec::with_capacity(plaintext.len() + 1);
            out.push(0u8);
            out.extend_from_slice(plaintext);
            return out;
        }
        let seq = self.counter.fetch_add(1, Ordering::Relaxed);
        let nonce = pesos_crypto::aead::counter_nonce(0x4f424a45, seq);
        let mut out = Vec::with_capacity(plaintext.len() + 64);
        out.push(1u8);
        out.extend_from_slice(&self.key.seal_to_bytes(
            &nonce,
            &Self::aad(object_key, version),
            plaintext,
        ));
        out
    }

    /// Decrypts a stored payload.
    pub fn unseal(
        &self,
        object_key: &str,
        version: u64,
        stored: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        match stored.first() {
            // pesos-lint: allow(panic_freedom, "the match on stored.first() guarantees at least one byte")
            Some(0) => Ok(stored[1..].to_vec()),
            Some(1) => self
                .key
                // pesos-lint: allow(panic_freedom, "the match on stored.first() guarantees at least one byte")
                .open_from_bytes(&stored[1..], &Self::aad(object_key, version)),
            _ => Err(CryptoError::InvalidEncoding("empty stored object".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypt_round_trip() {
        let c = ObjectCrypter::new(&[9u8; 32], true);
        let stored = c.seal("users/alice", 3, b"profile");
        assert_ne!(&stored[1..], b"profile");
        assert_eq!(c.unseal("users/alice", 3, &stored).unwrap(), b"profile");
    }

    #[test]
    fn aad_binds_key_and_version() {
        let c = ObjectCrypter::new(&[9u8; 32], true);
        let stored = c.seal("users/alice", 3, b"profile");
        assert!(c.unseal("users/bob", 3, &stored).is_err());
        assert!(c.unseal("users/alice", 4, &stored).is_err());
    }

    #[test]
    fn disabled_mode_passes_through() {
        let c = ObjectCrypter::new(&[9u8; 32], false);
        assert!(!c.is_enabled());
        let stored = c.seal("k", 0, b"plain");
        assert_eq!(&stored[1..], b"plain");
        assert_eq!(c.unseal("k", 0, &stored).unwrap(), b"plain");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let c = ObjectCrypter::new(&[9u8; 32], true);
        let mut stored = c.seal("k", 0, b"data");
        let last = stored.len() - 1;
        stored[last] ^= 1;
        assert!(c.unseal("k", 0, &stored).is_err());
        assert!(c.unseal("k", 0, &[]).is_err());
    }

    #[test]
    fn different_master_keys_do_not_interoperate() {
        let a = ObjectCrypter::new(&[1u8; 32], true);
        let b = ObjectCrypter::new(&[2u8; 32], true);
        let stored = a.seal("k", 0, b"data");
        assert!(b.unseal("k", 0, &stored).is_err());
    }
}
