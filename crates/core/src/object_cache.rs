//! The in-enclave object cache.
//!
//! A global in-memory structure that serves recently written or read objects
//! without a disk round trip and supports content-based policy checks
//! (`objSays`) with fast lookups (paper §3.1, §4.2). The cache is bounded by
//! a byte budget chosen to stay inside the EPC and evicts approximately
//! least-frequently-used entries.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted for space.
    pub evictions: u64,
    /// Bytes currently cached.
    pub used_bytes: u64,
    /// Entries currently cached.
    pub entries: usize,
}

struct Entry {
    value: Arc<Vec<u8>>,
    version: u64,
    frequency: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    used_bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A byte-bounded, approximately-LFU object cache.
pub struct ObjectCache {
    budget_bytes: u64,
    inner: Mutex<Inner>,
}

impl ObjectCache {
    /// Creates a cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        ObjectCache {
            budget_bytes: budget_bytes.max(1) as u64,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                used_bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Looks up the latest cached value and version for `key`.
    pub fn get(&self, key: &str) -> Option<(Arc<Vec<u8>>, u64)> {
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.frequency += 1;
                let out = (Arc::clone(&e.value), e.version);
                inner.hits += 1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the cached value for `key`.
    ///
    /// Values larger than the whole budget are not cached.
    pub fn put(&self, key: &str, value: Arc<Vec<u8>>, version: u64) {
        let size = value.len() as u64 + key.len() as u64;
        if size > self.budget_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.remove(key) {
            inner.used_bytes -= old.value.len() as u64 + key.len() as u64;
        }
        // Evict until the new entry fits.
        while inner.used_bytes + size > self.budget_bytes {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.frequency)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(e) = inner.entries.remove(&k) {
                        inner.used_bytes -= e.value.len() as u64 + k.len() as u64;
                        inner.evictions += 1;
                    }
                }
                None => break,
            }
        }
        inner.used_bytes += size;
        inner.entries.insert(
            key.to_string(),
            Entry {
                value,
                version,
                frequency: 1,
            },
        );
    }

    /// Removes a key from the cache (e.g. on delete).
    pub fn invalidate(&self, key: &str) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.remove(key) {
            inner.used_bytes -= e.value.len() as u64 + key.len() as u64;
        }
    }

    /// Returns counters.
    pub fn stats(&self) -> ObjectCacheStats {
        let inner = self.inner.lock();
        ObjectCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            used_bytes: inner.used_bytes,
            entries: inner.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_invalidate() {
        let cache = ObjectCache::new(1024);
        cache.put("a", Arc::new(b"value-a".to_vec()), 1);
        let (v, ver) = cache.get("a").unwrap();
        assert_eq!(&**v, b"value-a");
        assert_eq!(ver, 1);
        cache.invalidate("a");
        assert!(cache.get("a").is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn replacement_updates_accounting() {
        let cache = ObjectCache::new(1024);
        cache.put("a", Arc::new(vec![0; 100]), 1);
        cache.put("a", Arc::new(vec![0; 10]), 2);
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.used_bytes, 10 + 1);
        assert_eq!(cache.get("a").unwrap().1, 2);
    }

    #[test]
    fn byte_budget_enforced_with_lfu_eviction() {
        let cache = ObjectCache::new(350);
        cache.put("hot", Arc::new(vec![0; 100]), 1);
        for _ in 0..10 {
            cache.get("hot");
        }
        cache.put("cold1", Arc::new(vec![0; 100]), 1);
        cache.put("cold2", Arc::new(vec![0; 100]), 1);
        // Adding another 100-byte entry must evict a cold one, not the hot.
        cache.put("new", Arc::new(vec![0; 100]), 1);
        assert!(cache.get("hot").is_some());
        assert!(cache.stats().evictions >= 1);
        assert!(cache.stats().used_bytes <= 350);
    }

    #[test]
    fn oversized_values_not_cached() {
        let cache = ObjectCache::new(64);
        cache.put("big", Arc::new(vec![0; 1000]), 1);
        assert!(cache.get("big").is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
