//! The in-enclave object cache.
//!
//! A global in-memory structure that serves recently written or read objects
//! without a disk round trip and supports content-based policy checks
//! (`objSays`) with fast lookups (paper §3.1, §4.2). The cache is bounded by
//! a byte budget chosen to stay inside the EPC and evicts approximately
//! least-frequently-used entries.
//!
//! The byte budget is split across N independently locked LFU shards
//! (selected with [`crate::placement::key_hash`], the same hash replica
//! placement uses) so concurrent sessions touching different keys never
//! serialize on one global mutex. Eviction is per shard: a hot entry can
//! only be displaced by traffic hashing to its own shard, which approximates
//! global LFU closely under the uniform key hashing the placement function
//! provides.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::placement::HashedKey;
use crate::sharded::Sharded;

/// Counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted for space.
    pub evictions: u64,
    /// Bytes currently cached.
    pub used_bytes: u64,
    /// Entries currently cached.
    pub entries: usize,
}

struct Entry {
    value: Arc<Vec<u8>>,
    version: u64,
    frequency: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    used_bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A byte-bounded, approximately-LFU, lock-sharded object cache (built on
/// the generic [`Sharded`] container).
pub struct ObjectCache {
    shard_budget_bytes: u64,
    shards: Sharded<Mutex<Inner>>,
}

impl ObjectCache {
    /// Creates a single-shard cache with the given byte budget (one global
    /// lock; use [`ObjectCache::with_shards`] for the concurrent variant).
    pub fn new(budget_bytes: usize) -> Self {
        ObjectCache::with_shards(budget_bytes, 1)
    }

    /// Creates a cache whose byte budget is split evenly across `shards`
    /// independently locked LFU shards.
    ///
    /// Note the admission bound this implies: a single object can occupy at
    /// most one shard's budget (`budget_bytes / shards`), not the whole
    /// budget — the slab-style price of independent per-shard eviction.
    /// Deployments caching objects near the total budget should lower
    /// `lock_shards`.
    pub fn with_shards(budget_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ObjectCache {
            shard_budget_bytes: (budget_bytes / shards).max(1) as u64,
            shards: Sharded::new_indexed(shards, |i| {
                Mutex::with_rank_indexed(
                    parking_lot::lock_order::OBJECT_CACHE_SHARD,
                    i,
                    Inner::default(),
                )
            }),
        }
    }

    /// The configured byte budget (summed over all shards).
    pub fn budget_bytes(&self) -> u64 {
        self.shard_budget_bytes * self.shards.shard_count() as u64
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    fn shard(&self, key: &HashedKey<'_>) -> &Mutex<Inner> {
        self.shards.get(key)
    }

    /// Looks up the latest cached value and version for `key`.
    pub fn get<'a>(&self, key: impl Into<HashedKey<'a>>) -> Option<(Arc<Vec<u8>>, u64)> {
        let key = key.into();
        let mut inner = self.shard(&key).lock();
        match inner.entries.get_mut(key.key()) {
            Some(e) => {
                e.frequency += 1;
                let out = (Arc::clone(&e.value), e.version);
                inner.hits += 1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the cached value for `key`.
    ///
    /// Values larger than the whole shard budget are not cached.
    pub fn put<'a>(&self, key: impl Into<HashedKey<'a>>, value: Arc<Vec<u8>>, version: u64) {
        let hashed = key.into();
        let key = hashed.key();
        let size = value.len() as u64 + key.len() as u64;
        if size > self.shard_budget_bytes {
            return;
        }
        let mut inner = self.shard(&hashed).lock();
        if let Some(old) = inner.entries.remove(key) {
            inner.used_bytes -= old.value.len() as u64 + key.len() as u64;
        }
        // Evict until the new entry fits.
        while inner.used_bytes + size > self.shard_budget_bytes {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.frequency)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(e) = inner.entries.remove(&k) {
                        inner.used_bytes -= e.value.len() as u64 + k.len() as u64;
                        inner.evictions += 1;
                    }
                }
                None => break,
            }
        }
        inner.used_bytes += size;
        inner.entries.insert(
            key.to_string(),
            Entry {
                value,
                version,
                frequency: 1,
            },
        );
    }

    /// Removes a key from the cache (e.g. on delete).
    pub fn invalidate<'a>(&self, key: impl Into<HashedKey<'a>>) {
        let key = key.into();
        let mut inner = self.shard(&key).lock();
        if let Some(e) = inner.entries.remove(key.key()) {
            inner.used_bytes -= e.value.len() as u64 + key.key().len() as u64;
        }
    }

    /// Returns counters aggregated over all shards.
    pub fn stats(&self) -> ObjectCacheStats {
        let mut stats = ObjectCacheStats::default();
        for shard in self.shards.iter() {
            let inner = shard.lock();
            stats.hits += inner.hits;
            stats.misses += inner.misses;
            stats.evictions += inner.evictions;
            stats.used_bytes += inner.used_bytes;
            stats.entries += inner.entries.len();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_invalidate() {
        let cache = ObjectCache::new(1024);
        cache.put("a", Arc::new(b"value-a".to_vec()), 1);
        let (v, ver) = cache.get("a").unwrap();
        assert_eq!(&**v, b"value-a");
        assert_eq!(ver, 1);
        cache.invalidate("a");
        assert!(cache.get("a").is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn replacement_updates_accounting() {
        let cache = ObjectCache::new(1024);
        cache.put("a", Arc::new(vec![0; 100]), 1);
        cache.put("a", Arc::new(vec![0; 10]), 2);
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.used_bytes, 10 + 1);
        assert_eq!(cache.get("a").unwrap().1, 2);
    }

    #[test]
    fn byte_budget_enforced_with_lfu_eviction() {
        let cache = ObjectCache::new(350);
        cache.put("hot", Arc::new(vec![0; 100]), 1);
        for _ in 0..10 {
            cache.get("hot");
        }
        cache.put("cold1", Arc::new(vec![0; 100]), 1);
        cache.put("cold2", Arc::new(vec![0; 100]), 1);
        // Adding another 100-byte entry must evict a cold one, not the hot.
        cache.put("new", Arc::new(vec![0; 100]), 1);
        assert!(cache.get("hot").is_some());
        assert!(cache.stats().evictions >= 1);
        assert!(cache.stats().used_bytes <= 350);
    }

    #[test]
    fn oversized_values_not_cached() {
        let cache = ObjectCache::new(64);
        cache.put("big", Arc::new(vec![0; 1000]), 1);
        assert!(cache.get("big").is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn sharded_cache_keeps_per_key_semantics() {
        let cache = ObjectCache::with_shards(16 * 1024, 8);
        assert_eq!(cache.shard_count(), 8);
        assert_eq!(cache.budget_bytes(), (16 * 1024 / 8) * 8);
        for i in 0..100 {
            let key = format!("k{i}");
            cache.put(&key, Arc::new(vec![i as u8; 8]), i);
        }
        for i in 0..100 {
            let key = format!("k{i}");
            let (v, ver) = cache.get(&key).unwrap();
            assert_eq!(&**v, &vec![i as u8; 8]);
            assert_eq!(ver, i);
        }
        let s = cache.stats();
        assert_eq!(s.entries, 100);
        assert_eq!(s.hits, 100);
        cache.invalidate("k3");
        assert!(cache.get("k3").is_none());
    }

    #[test]
    fn shard_budgets_sum_to_total() {
        let cache = ObjectCache::with_shards(1000, 4);
        // Per-shard budget floors at total/shards.
        assert_eq!(cache.budget_bytes(), 1000);
        let tiny = ObjectCache::with_shards(2, 4);
        assert_eq!(tiny.budget_bytes(), 4); // floored at 1 byte per shard
    }
}
