//! The controller's storage layer.
//!
//! [`PesosStore`] sits between the request handler and the Kinetic drives:
//! it encrypts objects, maintains per-object metadata, persists compiled
//! policies, replicates writes according to the deterministic placement
//! function, serves reads from the object cache when possible, and routes
//! every disk interaction through the asynchronous system-call interface so
//! the SGX cost model is charged on the same code path as in the real
//! system.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use pesos_kinetic::{DriveSet, KineticClient, KineticError};
use pesos_policy::{CompiledPolicy, ObjectStoreView, PolicyCache, PolicyId, Tuple};
use pesos_sgx::{AsyscallInterface, Enclave};

use crate::encryption::ObjectCrypter;
use crate::error::PesosError;
use crate::metadata::{data_key, meta_key, policy_key, ObjectMetadata, VersionMeta};
use crate::object_cache::ObjectCache;
use crate::placement::placement_available;

/// The storage layer of one controller instance.
pub struct PesosStore {
    drives: DriveSet,
    clients: Vec<Arc<KineticClient>>,
    crypter: ObjectCrypter,
    object_cache: ObjectCache,
    policy_cache: PolicyCache,
    metadata: RwLock<HashMap<String, ObjectMetadata>>,
    replication_factor: usize,
    asyscall: Arc<AsyscallInterface>,
    enclave: Arc<Enclave>,
}

impl PesosStore {
    /// Creates the store over an already bootstrapped set of drives and
    /// authenticated clients (one per drive, in drive order).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        drives: DriveSet,
        clients: Vec<Arc<KineticClient>>,
        crypter: ObjectCrypter,
        object_cache_bytes: usize,
        policy_cache_capacity: usize,
        replication_factor: usize,
        asyscall: Arc<AsyscallInterface>,
        enclave: Arc<Enclave>,
    ) -> Self {
        PesosStore {
            drives,
            clients,
            crypter,
            object_cache: ObjectCache::new(object_cache_bytes),
            policy_cache: PolicyCache::new(policy_cache_capacity),
            metadata: RwLock::new(HashMap::new()),
            replication_factor,
            asyscall,
            enclave,
        }
    }

    /// The drive set backing the store.
    pub fn drives(&self) -> &DriveSet {
        &self.drives
    }

    /// Object-cache statistics.
    pub fn object_cache_stats(&self) -> crate::object_cache::ObjectCacheStats {
        self.object_cache.stats()
    }

    /// Policy-cache statistics.
    pub fn policy_cache_stats(&self) -> pesos_policy::CacheStats {
        self.policy_cache.stats()
    }

    fn online_indices(&self) -> Vec<usize> {
        self.drives.online_indices()
    }

    fn targets_for(&self, key: &str) -> Vec<usize> {
        placement_available(
            key,
            self.clients.len(),
            self.replication_factor,
            &self.online_indices(),
        )
    }

    fn backend_put(&self, drive_index: usize, key: Vec<u8>, value: Vec<u8>) -> Result<(), PesosError> {
        let client = Arc::clone(&self.clients[drive_index]);
        self.enclave.charge_boundary_copy(value.len());
        let result = self
            .asyscall
            .submit(move || client.put(&key, value, &[], b"pesos", true))?;
        result.map_err(PesosError::from)
    }

    fn backend_get(&self, drive_index: usize, key: Vec<u8>) -> Result<Vec<u8>, KineticError> {
        let client = Arc::clone(&self.clients[drive_index]);
        let result = self
            .asyscall
            .submit(move || client.get(&key))
            .map_err(|_| KineticError::ConnectionClosed)?;
        result.map(|(value, _version)| value)
    }

    fn backend_delete(&self, drive_index: usize, key: Vec<u8>) {
        let client = Arc::clone(&self.clients[drive_index]);
        let _ = self.asyscall.submit(move || client.delete(&key, &[], true));
    }

    /// Writes `encoded` to every placement target of `placement_key`.
    fn replicated_put(&self, placement_key: &str, backend_key: Vec<u8>, encoded: Vec<u8>) -> Result<(), PesosError> {
        let targets = self.targets_for(placement_key);
        if targets.is_empty() {
            return Err(PesosError::Backend("no online drives".into()));
        }
        for index in targets {
            self.backend_put(index, backend_key.clone(), encoded.clone())?;
        }
        Ok(())
    }

    /// Reads `backend_key` from the first reachable replica of
    /// `placement_key`.
    fn replicated_get(&self, placement_key: &str, backend_key: Vec<u8>) -> Result<Vec<u8>, PesosError> {
        let targets = self.targets_for(placement_key);
        let mut last_err = PesosError::Backend("no online drives".into());
        for index in targets {
            match self.backend_get(index, backend_key.clone()) {
                Ok(v) => return Ok(v),
                Err(KineticError::NotFound) => {
                    last_err = PesosError::ObjectNotFound(placement_key.to_string())
                }
                Err(e) => last_err = PesosError::Backend(e.to_string()),
            }
        }
        Err(last_err)
    }

    // ------------------------------------------------------------------
    // Policies
    // ------------------------------------------------------------------

    /// Compiles and persists a policy, returning its identifier.
    pub fn put_policy(&self, source: &str) -> Result<PolicyId, PesosError> {
        let compiled = Arc::new(pesos_policy::compile(source)?);
        self.store_compiled_policy(compiled)
    }

    /// Persists an already compiled policy.
    pub fn store_compiled_policy(&self, policy: Arc<CompiledPolicy>) -> Result<PolicyId, PesosError> {
        let id = policy.id();
        let bytes = policy.to_bytes();
        self.replicated_put(&id.to_hex(), policy_key(&id.to_hex()), bytes)?;
        self.policy_cache.insert(policy);
        Ok(id)
    }

    /// Loads a policy by identifier, consulting the cache first and falling
    /// back to the drives.
    pub fn load_policy(&self, id: &PolicyId) -> Result<Arc<CompiledPolicy>, PesosError> {
        if let Some(p) = self.policy_cache.get(id) {
            return Ok(p);
        }
        let bytes = self
            .replicated_get(&id.to_hex(), policy_key(&id.to_hex()))
            .map_err(|_| PesosError::PolicyNotFound(id.to_hex()))?;
        let policy = Arc::new(CompiledPolicy::from_bytes(&bytes)?);
        if policy.id() != *id {
            return Err(PesosError::Backend("stored policy hash mismatch".into()));
        }
        self.policy_cache.insert(Arc::clone(&policy));
        Ok(policy)
    }

    // ------------------------------------------------------------------
    // Metadata
    // ------------------------------------------------------------------

    /// Returns the metadata for `key`, reading through to the drives on a
    /// cold start.
    pub fn get_metadata(&self, key: &str) -> Option<ObjectMetadata> {
        if let Some(m) = self.metadata.read().get(key) {
            return Some(m.clone());
        }
        match self.replicated_get(key, meta_key(key)) {
            Ok(bytes) => {
                let meta = ObjectMetadata::from_bytes(&bytes).ok()?;
                self.metadata
                    .write()
                    .insert(key.to_string(), meta.clone());
                Some(meta)
            }
            Err(_) => None,
        }
    }

    fn persist_metadata(&self, meta: &ObjectMetadata) -> Result<(), PesosError> {
        self.replicated_put(&meta.key, meta_key(&meta.key), meta.to_bytes())?;
        self.metadata
            .write()
            .insert(meta.key.clone(), meta.clone());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Objects
    // ------------------------------------------------------------------

    /// Stores a new version of `key` and returns the version number.
    ///
    /// The caller (controller) is responsible for policy checks; the store
    /// only enforces the mechanical version sequence.
    pub fn put_object(
        &self,
        key: &str,
        value: &[u8],
        policy_id: Option<PolicyId>,
    ) -> Result<u64, PesosError> {
        let mut meta = self
            .get_metadata(key)
            .unwrap_or_else(|| ObjectMetadata::new(key));
        let new_version = if meta.versions.is_empty() {
            0
        } else {
            meta.latest_version + 1
        };

        let encoded = self.crypter.seal(key, new_version, value);
        self.replicated_put(key, data_key(key, new_version), encoded)?;

        let policy_hash = policy_id
            .or(meta.policy_id)
            .map(|p| p.0.to_vec())
            .unwrap_or_default();
        if policy_id.is_some() {
            meta.policy_id = policy_id;
        }
        meta.record_version(VersionMeta {
            version: new_version,
            size: value.len() as u64,
            value_hash: pesos_crypto::sha256(value).to_vec(),
            policy_hash,
        });
        self.persist_metadata(&meta)?;

        self.object_cache
            .put(key, Arc::new(value.to_vec()), new_version);
        Ok(new_version)
    }

    /// Retrieves the latest version of `key`.
    pub fn get_object(&self, key: &str) -> Result<(Arc<Vec<u8>>, u64), PesosError> {
        if let Some((value, version)) = self.object_cache.get(key) {
            return Ok((value, version));
        }
        let meta = self
            .get_metadata(key)
            .ok_or_else(|| PesosError::ObjectNotFound(key.to_string()))?;
        let version = meta.latest_version;
        let value = self.get_object_version(key, version)?;
        let value = Arc::new(value);
        self.object_cache.put(key, Arc::clone(&value), version);
        Ok((value, version))
    }

    /// Retrieves a specific stored version of `key` (used by versioned-store
    /// history reads and `objSays` evaluation).
    pub fn get_object_version(&self, key: &str, version: u64) -> Result<Vec<u8>, PesosError> {
        let stored = self.replicated_get(key, data_key(key, version))?;
        self.crypter
            .unseal(key, version, &stored)
            .map_err(|e| PesosError::Backend(format!("decryption failed: {e}")))
    }

    /// Deletes `key` (all retained versions and its metadata).
    pub fn delete_object(&self, key: &str) -> Result<(), PesosError> {
        let meta = self
            .get_metadata(key)
            .ok_or_else(|| PesosError::ObjectNotFound(key.to_string()))?;
        let targets = self.targets_for(key);
        for v in &meta.versions {
            for &index in &targets {
                self.backend_delete(index, data_key(key, v.version));
            }
        }
        for &index in &targets {
            self.backend_delete(index, meta_key(key));
        }
        self.metadata.write().remove(key);
        self.object_cache.invalidate(key);
        Ok(())
    }

    /// Associates `policy_id` with an existing object without changing its
    /// contents.
    pub fn attach_policy(&self, key: &str, policy_id: PolicyId) -> Result<(), PesosError> {
        let mut meta = self
            .get_metadata(key)
            .ok_or_else(|| PesosError::ObjectNotFound(key.to_string()))?;
        meta.policy_id = Some(policy_id);
        self.persist_metadata(&meta)
    }

    /// Returns a read-only view adapter usable by the policy interpreter.
    pub fn view(&self) -> StoreView<'_> {
        StoreView { store: self }
    }
}

/// Adapter exposing the store as an [`ObjectStoreView`] for policy checks.
pub struct StoreView<'a> {
    store: &'a PesosStore,
}

impl ObjectStoreView for StoreView<'_> {
    fn exists(&self, key: &str) -> bool {
        self.store.get_metadata(key).is_some()
    }

    fn current_version(&self, key: &str) -> Option<u64> {
        self.store.get_metadata(key).map(|m| m.latest_version)
    }

    fn object_size(&self, key: &str, version: u64) -> Option<u64> {
        self.store
            .get_metadata(key)
            .and_then(|m| m.version(version).map(|v| v.size))
    }

    fn object_hash(&self, key: &str, version: u64) -> Option<Vec<u8>> {
        self.store
            .get_metadata(key)
            .and_then(|m| m.version(version).map(|v| v.value_hash.clone()))
    }

    fn policy_hash(&self, key: &str, version: u64) -> Option<Vec<u8>> {
        self.store
            .get_metadata(key)
            .and_then(|m| m.version(version).map(|v| v.policy_hash.clone()))
    }

    fn object_tuples(&self, key: &str, version: u64) -> Vec<Tuple> {
        // Objects accessed during policy evaluation are cached so that
        // content-based policies avoid repeated disk reads (paper §4.2).
        let contents = if let Some((cached, cached_version)) = self.store.object_cache.get(key) {
            if cached_version == version {
                Some((*cached).clone())
            } else {
                self.store.get_object_version(key, version).ok()
            }
        } else {
            self.store.get_object_version(key, version).ok()
        };
        match contents {
            Some(bytes) => std::str::from_utf8(&bytes)
                .map(|text| text.lines().filter_map(Tuple::parse).collect())
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pesos_kinetic::{ClientConfig, DriveConfig, KineticDrive};
    use pesos_sgx::{EnclaveConfig, ExecutionMode, SgxCostModel};

    fn store(drive_count: usize, replication: usize) -> PesosStore {
        let drives: Vec<Arc<KineticDrive>> = (0..drive_count)
            .map(|i| Arc::new(KineticDrive::new(DriveConfig::simulator(format!("kd-{i}")))))
            .collect();
        let clients: Vec<Arc<KineticClient>> = drives
            .iter()
            .map(|d| {
                Arc::new(
                    KineticClient::connect(Arc::clone(d), ClientConfig::factory_default()).unwrap(),
                )
            })
            .collect();
        let cost = pesos_sgx::cost::ModeCost::new(ExecutionMode::Native, SgxCostModel::zero());
        let enclave = Arc::new(Enclave::create(EnclaveConfig::default(), cost).unwrap());
        let asyscall = Arc::new(AsyscallInterface::new(2, 16, cost));
        PesosStore::new(
            DriveSet::from_drives(drives),
            clients,
            ObjectCrypter::new(&[1u8; 32], true),
            1024 * 1024,
            128,
            replication,
            asyscall,
            enclave,
        )
    }

    #[test]
    fn object_round_trip_with_versions() {
        let s = store(1, 1);
        assert_eq!(s.put_object("users/alice", b"v0", None).unwrap(), 0);
        assert_eq!(s.put_object("users/alice", b"v1", None).unwrap(), 1);
        let (value, version) = s.get_object("users/alice").unwrap();
        assert_eq!(&**value, b"v1");
        assert_eq!(version, 1);
        assert_eq!(s.get_object_version("users/alice", 0).unwrap(), b"v0");
        assert!(matches!(
            s.get_object("missing"),
            Err(PesosError::ObjectNotFound(_))
        ));
    }

    #[test]
    fn objects_are_encrypted_on_the_drives() {
        let s = store(1, 1);
        s.put_object("secret", b"plaintext-contents", None).unwrap();
        let drive = s.drives().get(0).unwrap();
        let raw = drive.peek(&data_key("secret", 0)).unwrap();
        assert_ne!(raw.value, b"plaintext-contents");
        assert!(!raw
            .value
            .windows(b"plaintext".len())
            .any(|w| w == b"plaintext"));
    }

    #[test]
    fn delete_removes_data_and_metadata() {
        let s = store(1, 1);
        s.put_object("tmp", b"x", None).unwrap();
        s.put_object("tmp", b"y", None).unwrap();
        s.delete_object("tmp").unwrap();
        assert!(s.get_metadata("tmp").is_none());
        assert!(s.get_object("tmp").is_err());
        assert!(s.delete_object("tmp").is_err());
    }

    #[test]
    fn policies_persist_and_reload() {
        let s = store(1, 1);
        let id = s.put_policy("read :- sessionKeyIs(\"alice\")").unwrap();
        // A hit from the cache.
        assert!(s.load_policy(&id).is_ok());
        // Clear the cache to force the disk path.
        s.policy_cache.clear();
        let reloaded = s.load_policy(&id).unwrap();
        assert_eq!(reloaded.id(), id);
        assert!(matches!(
            s.load_policy(&PolicyId([0u8; 32])),
            Err(PesosError::PolicyNotFound(_))
        ));
    }

    #[test]
    fn replication_places_copies_on_multiple_drives() {
        let s = store(3, 3);
        s.put_object("replicated", b"payload", None).unwrap();
        let copies = s
            .drives()
            .iter()
            .filter(|d| d.peek(&data_key("replicated", 0)).is_some())
            .count();
        assert_eq!(copies, 3);
    }

    #[test]
    fn reads_survive_primary_drive_failure_with_replication() {
        let s = store(3, 2);
        s.put_object("ha-object", b"payload", None).unwrap();
        // Take the primary replica offline.
        let targets = crate::placement::placement("ha-object", 3, 2);
        s.drives().get(targets[0]).unwrap().set_online(false);
        // Invalidate the cache so the read truly goes to the drives.
        s.object_cache.invalidate("ha-object");
        let (value, _) = s.get_object("ha-object").unwrap();
        assert_eq!(&**value, b"payload");
    }

    #[test]
    fn attach_policy_updates_metadata() {
        let s = store(1, 1);
        s.put_object("doc", b"contents", None).unwrap();
        let id = s.put_policy("read :- sessionKeyIs(\"alice\")").unwrap();
        s.attach_policy("doc", id).unwrap();
        assert_eq!(s.get_metadata("doc").unwrap().policy_id, Some(id));
        assert!(s.attach_policy("missing", id).is_err());
    }

    #[test]
    fn view_exposes_object_facts() {
        let s = store(1, 1);
        s.put_object("doc", b"hello world", None).unwrap();
        s.put_object("doc.log", b"read(\"doc\",0,\"alice\")", None).unwrap();
        let view = s.view();
        assert!(view.exists("doc"));
        assert!(!view.exists("nope"));
        assert_eq!(view.current_version("doc"), Some(0));
        assert_eq!(view.object_size("doc", 0), Some(11));
        assert_eq!(
            view.object_hash("doc", 0).unwrap(),
            pesos_crypto::sha256(b"hello world").to_vec()
        );
        let tuples = view.object_tuples("doc.log", 0);
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].name, "read");
    }
}
