//! The controller's storage layer.
//!
//! [`PesosStore`] sits between the request handler and the Kinetic drives:
//! it encrypts objects, maintains per-object metadata, persists compiled
//! policies, replicates writes according to the deterministic placement
//! function, serves reads from the object cache when possible, and routes
//! every disk interaction through the asynchronous system-call interface so
//! the SGX cost model is charged on the same code path as in the real
//! system.
//!
//! # The parallel scatter-gather hot path
//!
//! Replicated writes are issued as one [`AsyscallInterface::submit_batch`]:
//! all replica PUTs are enqueued back-to-back and joined once, first error
//! wins, so a replication factor of N costs one drive round trip instead of
//! N sequential ones. Replicated reads race the replicas through the same
//! batch machinery and return the first successful completion, leaving the
//! stragglers to finish in the background. Object payloads and backend keys
//! travel as shared [`Payload`]/`Arc<[u8]>` buffers, so fanning a write out
//! to N replicas bumps reference counts instead of cloning the encoded
//! object per target — and the kinetic wire path underneath is vectored
//! (`Command::encode_vectored` / `VectoredEnvelope`), so each replica's
//! frame borrows that same buffer end to end: the sealed object the
//! crypter produced is the buffer the drive engine stores, with zero
//! physical copies in between. The enclave-boundary copy the paper's cost
//! model charges per replica is accounted explicitly
//! ([`Enclave::charge_boundary_copy`] in [`PesosStore::replicated_put`]);
//! it is the *only* per-replica payload cost left on the write path.
//!
//! Hot shared state is lock-sharded: the metadata map
//! ([`ShardedMetadata`]) and the object cache split their entries over N
//! independently locked shards selected by the same key hash replica
//! placement uses, and writers serialize per key (not globally) through a
//! sharded key-lock registry, so concurrent sessions on different keys
//! proceed without contention while writes to one key stay linearizable.
//!
//! Setting [`crate::config::ControllerConfig::serial_replication`] restores
//! the old blocking one-replica-at-a-time path; benchmarks use it as the
//! "before" configuration and tests assert both paths leave byte-identical
//! drive state.
//!
//! # The digest pipeline
//!
//! Every hash on the request path is computed exactly once. The controller
//! builds a [`HashedKey`] when a request enters and threads it through
//! placement, the metadata shard, the cache shard and the key-lock
//! registry, so the SHA-256 placement hash is paid once per request rather
//! than once per structure. Put payloads arrive with the content digest the
//! controller already computed for the policy check (the crate-private
//! `put_object_full`), so the version metadata never hashes the same bytes
//! twice. The compression-count budgets in `tests/digest_budget.rs` pin
//! these invariants.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use pesos_kinetic::{DriveSet, KineticClient, KineticError, Payload};
use pesos_policy::{CompiledPolicy, ObjectStoreView, PolicyCache, PolicyId, Tuple};
use pesos_sgx::{AsyscallInterface, CompletionPool, Enclave};

use crate::config::ControllerConfig;
use crate::encryption::ObjectCrypter;
use crate::error::PesosError;
use crate::metadata::{
    data_key, meta_key, policy_key, ObjectMetadata, ShardedMetadata, VersionMeta,
};
use crate::object_cache::ObjectCache;
use crate::placement::{placement_available, HashedKey};
use crate::sharded::Sharded;

/// Sizing and behaviour options for one [`PesosStore`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Byte budget of the object cache.
    pub object_cache_bytes: usize,
    /// Entry capacity of the policy cache.
    pub policy_cache_capacity: usize,
    /// Replication factor (1 = no replication).
    pub replication_factor: usize,
    /// Lock shards for metadata, cache and key-lock structures.
    pub lock_shards: usize,
    /// Use the serial (pre-batch) replication path.
    pub serial_replication: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions::from_config(&ControllerConfig::default())
    }
}

impl StoreOptions {
    /// Extracts the store-relevant options from a controller configuration.
    pub fn from_config(config: &ControllerConfig) -> Self {
        StoreOptions {
            object_cache_bytes: config.object_cache_bytes,
            policy_cache_capacity: config.policy_cache_capacity,
            replication_factor: config.replication_factor,
            lock_shards: config.lock_shards,
            serial_replication: config.serial_replication,
        }
    }
}

/// Sharded registry of per-key write locks.
///
/// A writer holds its key's lock across version assignment, replica I/O,
/// metadata persistence and cache update, which linearizes writes per key
/// without serializing unrelated keys. Entries are dropped again when a
/// delete leaves no other holder, so the registry tracks live keys rather
/// than every key ever written.
struct KeyLocks {
    shards: Sharded<Mutex<HashMap<String, Arc<Mutex<()>>>>>,
}

impl KeyLocks {
    fn new(shards: usize) -> Self {
        KeyLocks {
            shards: Sharded::new_indexed(shards, |i| {
                Mutex::with_rank_indexed(parking_lot::lock_order::KEY_REGISTRY, i, HashMap::new())
            }),
        }
    }

    fn shard(&self, key: &HashedKey<'_>) -> &Mutex<HashMap<String, Arc<Mutex<()>>>> {
        self.shards.get(key)
    }

    fn lock_for(&self, key: &HashedKey<'_>) -> Arc<Mutex<()>> {
        Arc::clone(
            self.shard(key)
                .lock()
                .entry(key.key().to_string())
                .or_insert_with(|| {
                    Arc::new(Mutex::with_rank(parking_lot::lock_order::KEY_LOCK, ()))
                }),
        )
    }

    /// Drops `key`'s registry entry if `held` (the caller's clone) and the
    /// registry itself are the only holders. New clones are only handed
    /// out under the shard lock, so the count cannot grow concurrently.
    fn release_if_unused(&self, key: &HashedKey<'_>, held: &Arc<Mutex<()>>) {
        let mut shard = self.shard(key).lock();
        if Arc::strong_count(held) == 2 {
            shard.remove(key.key());
        }
    }
}

/// The storage layer of one controller instance.
pub struct PesosStore {
    drives: DriveSet,
    clients: Vec<Arc<KineticClient>>,
    crypter: ObjectCrypter,
    object_cache: ObjectCache,
    policy_cache: PolicyCache,
    metadata: ShardedMetadata,
    key_locks: KeyLocks,
    replication_factor: usize,
    serial_replication: bool,
    asyscall: Arc<AsyscallInterface>,
    enclave: Arc<Enclave>,
    /// Typed completion pools, one per kinetic result type, backing both
    /// the single-call and scatter-gather drive paths: steady-state traffic
    /// recycles completion cells instead of allocating one `Arc` per call
    /// (cells a raced read abandons mid-flight are simply replaced).
    put_pool: CompletionPool<Result<(), KineticError>>,
    get_pool: CompletionPool<Result<(Payload, Vec<u8>), KineticError>>,
    unit_pool: CompletionPool<()>,
}

impl PesosStore {
    /// Creates the store over an already bootstrapped set of drives and
    /// authenticated clients (one per drive, in drive order).
    pub fn new(
        drives: DriveSet,
        clients: Vec<Arc<KineticClient>>,
        crypter: ObjectCrypter,
        options: StoreOptions,
        asyscall: Arc<AsyscallInterface>,
        enclave: Arc<Enclave>,
    ) -> Self {
        // A pool can never need more cells than the slot table allows calls
        // in flight.
        let pool_capacity = asyscall.slots();
        PesosStore {
            drives,
            clients,
            crypter,
            object_cache: ObjectCache::with_shards(options.object_cache_bytes, options.lock_shards),
            policy_cache: PolicyCache::with_shards(
                options.policy_cache_capacity,
                options.lock_shards,
            ),
            metadata: ShardedMetadata::new(options.lock_shards),
            key_locks: KeyLocks::new(options.lock_shards),
            replication_factor: options.replication_factor,
            serial_replication: options.serial_replication,
            asyscall,
            enclave,
            put_pool: CompletionPool::new(pool_capacity),
            get_pool: CompletionPool::new(pool_capacity),
            unit_pool: CompletionPool::new(pool_capacity),
        }
    }

    /// The drive set backing the store.
    pub fn drives(&self) -> &DriveSet {
        &self.drives
    }

    /// Object-cache statistics.
    pub fn object_cache_stats(&self) -> crate::object_cache::ObjectCacheStats {
        self.object_cache.stats()
    }

    /// Policy-cache statistics.
    pub fn policy_cache_stats(&self) -> pesos_policy::CacheStats {
        self.policy_cache.stats()
    }

    /// Statistics of the asynchronous system-call interface the store
    /// drives; exposes how many scatter-gather batches were issued and the
    /// peak I/O concurrency reached.
    pub fn asyscall_stats(&self) -> pesos_sgx::AsyscallStats {
        self.asyscall.stats()
    }

    /// Recycling statistics of the typed completion pools (put, get,
    /// fire-and-forget), summed.
    pub fn completion_pool_stats(&self) -> pesos_sgx::CompletionPoolStats {
        let (p, g, u) = (
            self.put_pool.stats(),
            self.get_pool.stats(),
            self.unit_pool.stats(),
        );
        pesos_sgx::CompletionPoolStats {
            reused: p.reused + g.reused + u.reused,
            allocated: p.allocated + g.allocated + u.allocated,
        }
    }

    /// EPC usage counters of the enclave this store runs in. Each
    /// controller instance owns one logical enclave, so a cluster
    /// deployment reads per-partition SGX cost from here.
    pub fn epc_stats(&self) -> pesos_sgx::EpcStats {
        self.enclave.epc_stats()
    }

    fn online_indices(&self) -> Vec<usize> {
        self.drives.online_indices()
    }

    fn targets_for(&self, key: &HashedKey<'_>) -> Vec<usize> {
        placement_available(
            key,
            self.clients.len(),
            self.replication_factor,
            &self.online_indices(),
        )
    }

    fn backend_put(
        &self,
        drive_index: usize,
        key: Arc<[u8]>,
        value: Payload,
    ) -> Result<(), PesosError> {
        // pesos-lint: allow(panic_freedom, "drive indices come from targets_for, which is bounded by the client list")
        let client = Arc::clone(&self.clients[drive_index]);
        self.enclave.charge_boundary_copy(value.len());
        let result = self.asyscall.submit_with_pool(&self.put_pool, move || {
            client.put(&key, value, &[], b"pesos", true)
        })?;
        result.map_err(PesosError::from)
    }

    fn backend_delete(&self, drive_index: usize, key: Arc<[u8]>) {
        // pesos-lint: allow(panic_freedom, "drive indices come from targets_for, which is bounded by the client list")
        let client = Arc::clone(&self.clients[drive_index]);
        let _ = self.asyscall.submit_with_pool(&self.unit_pool, move || {
            let _ = client.delete(&key, &[], true);
        });
    }

    /// Writes `encoded` to every placement target of `placement_key`.
    ///
    /// The default path enqueues one PUT per replica as a single
    /// scatter-gather batch and joins the whole set once (first error
    /// wins); the payload and backend key are shared buffers, so each
    /// replica costs a reference-count bump, not a copy — the vectored
    /// kinetic frames keep it that way all the way into the drive engine.
    /// The simulated enclave-boundary copy is charged here, once per
    /// replica, because the cost model still pays for the bytes leaving
    /// the enclave even though the in-process simulation elides the
    /// physical copy.
    fn replicated_put(
        &self,
        placement_key: &HashedKey<'_>,
        backend_key: Arc<[u8]>,
        encoded: Payload,
    ) -> Result<(), PesosError> {
        let targets = self.targets_for(placement_key);
        if targets.is_empty() {
            return Err(PesosError::Backend("no online drives".into()));
        }
        if self.serial_replication {
            for index in targets {
                self.backend_put(index, Arc::clone(&backend_key), encoded.clone())?;
            }
            return Ok(());
        }

        for _ in &targets {
            self.enclave.charge_boundary_copy(encoded.len());
        }
        let set = self.asyscall.submit_batch_pooled(
            &self.put_pool,
            targets.iter().map(|&index| {
                // pesos-lint: allow(panic_freedom, "drive indices come from targets_for, which is bounded by the client list")
                let client = Arc::clone(&self.clients[index]);
                let key = Arc::clone(&backend_key);
                let value = encoded.clone();
                move || client.put(&key, value, &[], b"pesos", true)
            }),
        )?;
        for result in set.join()? {
            result.map_err(PesosError::from)?;
        }
        Ok(())
    }

    /// Reads `backend_key` from the replicas of `placement_key`.
    ///
    /// All reachable replicas are raced through one scatter-gather batch;
    /// the first successful completion wins and the remaining reads drain
    /// in the background.
    fn replicated_get(
        &self,
        placement_key: &HashedKey<'_>,
        backend_key: Arc<[u8]>,
    ) -> Result<Payload, PesosError> {
        let targets = self.targets_for(placement_key);
        let not_found = || PesosError::ObjectNotFound(placement_key.key().to_string());
        if targets.is_empty() {
            return Err(PesosError::Backend("no online drives".into()));
        }

        if self.serial_replication {
            let mut last_err = PesosError::Backend("no online drives".into());
            for index in targets {
                // pesos-lint: allow(panic_freedom, "drive indices come from targets_for, which is bounded by the client list")
                let client = Arc::clone(&self.clients[index]);
                let key = Arc::clone(&backend_key);
                let result = self
                    .asyscall
                    .submit_with_pool(&self.get_pool, move || client.get(&key))
                    .map_err(|_| KineticError::ConnectionClosed);
                match result.and_then(|r| r) {
                    Ok((value, _version)) => return Ok(value),
                    Err(KineticError::NotFound) => last_err = not_found(),
                    Err(e) => last_err = PesosError::Backend(e.to_string()),
                }
            }
            return Err(last_err);
        }

        let mut set = self.asyscall.submit_batch_pooled(
            &self.get_pool,
            targets.iter().map(|&index| {
                // pesos-lint: allow(panic_freedom, "drive indices come from targets_for, which is bounded by the client list")
                let client = Arc::clone(&self.clients[index]);
                let key = Arc::clone(&backend_key);
                move || client.get(&key)
            }),
        )?;
        let mut saw_not_found = false;
        let mut last_err: Option<PesosError> = None;
        while let Some((_index, result)) = set.next_completed() {
            match result {
                Ok(Ok((value, _version))) => return Ok(value),
                Ok(Err(KineticError::NotFound)) => saw_not_found = true,
                Ok(Err(e)) => last_err = Some(PesosError::Backend(e.to_string())),
                Err(e) => last_err = Some(PesosError::Backend(e.to_string())),
            }
        }
        if saw_not_found {
            Err(not_found())
        } else {
            Err(last_err.unwrap_or_else(|| PesosError::Backend("no online drives".into())))
        }
    }

    // ------------------------------------------------------------------
    // Policies
    // ------------------------------------------------------------------

    /// Compiles and persists a policy, returning its identifier.
    pub fn put_policy(&self, source: &str) -> Result<PolicyId, PesosError> {
        let compiled = Arc::new(pesos_policy::compile(source)?);
        self.store_compiled_policy(compiled)
    }

    /// Persists an already compiled policy.
    pub fn store_compiled_policy(
        &self,
        policy: Arc<CompiledPolicy>,
    ) -> Result<PolicyId, PesosError> {
        let id = policy.id();
        let bytes = policy.to_bytes();
        let hex = id.to_hex();
        self.replicated_put(
            &HashedKey::new(&hex),
            Arc::from(policy_key(&hex)),
            bytes.into(),
        )?;
        self.policy_cache.insert(policy);
        Ok(id)
    }

    /// Loads a policy by identifier, consulting the cache first and falling
    /// back to the drives.
    pub fn load_policy(&self, id: &PolicyId) -> Result<Arc<CompiledPolicy>, PesosError> {
        if let Some(p) = self.policy_cache.get(id) {
            return Ok(p);
        }
        let hex = id.to_hex();
        let bytes = self
            .replicated_get(&HashedKey::new(&hex), Arc::from(policy_key(&hex)))
            .map_err(|_| PesosError::PolicyNotFound(id.to_hex()))?;
        let policy = Arc::new(CompiledPolicy::from_bytes(&bytes)?);
        if policy.id() != *id {
            return Err(PesosError::Backend("stored policy hash mismatch".into()));
        }
        self.policy_cache.insert(Arc::clone(&policy));
        Ok(policy)
    }

    // ------------------------------------------------------------------
    // Metadata
    // ------------------------------------------------------------------

    /// Returns the metadata for `key`, reading through to the drives on a
    /// cold start.
    ///
    /// The read-through (drive read + map fill) runs under the key write
    /// lock: filling without it could insert metadata a concurrent delete
    /// or newer put has already superseded, resurrecting deleted objects
    /// or rolling versions back. The warm path (map hit) stays lock-free.
    pub fn get_metadata<'a>(&self, key: impl Into<HashedKey<'a>>) -> Option<ObjectMetadata> {
        let key = key.into();
        if let Some(m) = self.metadata.get(&key) {
            return Some(m);
        }
        let key_lock = self.key_locks.lock_for(&key);
        let fill_guard = key_lock.lock();
        let out = self.load_metadata_locked(&key);
        drop(fill_guard);
        self.key_locks.release_if_unused(&key, &key_lock);
        out
    }

    /// The read-through body of [`PesosStore::get_metadata`]; the caller
    /// must hold `key`'s write lock, which makes the drive read
    /// authoritative (no delete or put can run concurrently for this key).
    /// Collapses drive faults into `None` — callers that must distinguish
    /// "no record" from "drives unreachable" (deletes and exports, whose
    /// callers treat absence as *completion*) use
    /// [`PesosStore::load_metadata_checked`] instead.
    fn load_metadata_locked(&self, key: &HashedKey<'_>) -> Option<ObjectMetadata> {
        self.load_metadata_checked(key).ok().flatten()
    }

    /// Read-through metadata load that keeps drive faults as errors:
    /// `Ok(None)` means the drives *answered* and no record exists, never
    /// that they could not be asked. Migration pulls rely on this — a
    /// delete or export that mistook an unreachable drive for an absent
    /// record would report a still-resident object as settled. The caller
    /// must hold `key`'s write lock.
    fn load_metadata_checked(
        &self,
        key: &HashedKey<'_>,
    ) -> Result<Option<ObjectMetadata>, PesosError> {
        if let Some(m) = self.metadata.get(key) {
            return Ok(Some(m));
        }
        match self.replicated_get(key, Arc::from(meta_key(key.key()))) {
            Ok(bytes) => {
                let Ok(meta) = ObjectMetadata::from_bytes(&bytes) else {
                    return Ok(None);
                };
                // A record whose embedded key differs from the key it was
                // stored under is corrupt drive state: caching it would
                // file it in `key`'s shard under the embedded name, where
                // no lookup or removal would ever find it again.
                if meta.key != key.key() {
                    return Ok(None);
                }
                self.metadata.insert(key, meta.clone());
                Ok(Some(meta))
            }
            Err(PesosError::ObjectNotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn persist_metadata(
        &self,
        key: &HashedKey<'_>,
        meta: &ObjectMetadata,
    ) -> Result<(), PesosError> {
        self.replicated_put(key, Arc::from(meta_key(&meta.key)), meta.to_bytes().into())?;
        self.metadata.insert(key, meta.clone());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Objects
    // ------------------------------------------------------------------

    /// Stores a new version of `key` and returns the version number.
    ///
    /// The caller (controller) is responsible for policy checks; the store
    /// only enforces the mechanical version sequence. Writes to the same
    /// key are linearized through its key lock; writes to different keys
    /// proceed concurrently.
    pub fn put_object<'a>(
        &self,
        key: impl Into<HashedKey<'a>>,
        value: &[u8],
        policy_id: Option<PolicyId>,
    ) -> Result<u64, PesosError> {
        self.put_object_full(key, value, policy_id, None, None)
    }

    /// Like [`PesosStore::put_object`] but with compare-and-swap semantics:
    /// when `expected_version` is given, the write only succeeds if it
    /// lands exactly at that version. The check runs under the key lock, so
    /// two racing writers expecting the same version cannot both succeed —
    /// the policy layer's pre-write `nextVersion` check alone cannot
    /// guarantee that, because it runs before the lock is taken.
    pub fn put_object_cas<'a>(
        &self,
        key: impl Into<HashedKey<'a>>,
        value: &[u8],
        policy_id: Option<PolicyId>,
        expected_version: Option<u64>,
    ) -> Result<u64, PesosError> {
        self.put_object_full(key, value, policy_id, expected_version, None)
    }

    /// The full put path: compare-and-swap plus an optional precomputed
    /// content digest.
    ///
    /// The controller already hashes every put payload for the policy
    /// check's `objHash` predicate; passing that digest here keeps the
    /// version metadata from hashing the same bytes a second time. A `None`
    /// hash is computed on the spot, so callers without a digest get
    /// identical results. Crate-private because the digest is trusted: a
    /// mismatched hash would be persisted into the version metadata, where
    /// it breaks `objHash` policies and permanently defeats the get-path
    /// cache revalidation for that version.
    pub(crate) fn put_object_full<'a>(
        &self,
        key: impl Into<HashedKey<'a>>,
        value: &[u8],
        policy_id: Option<PolicyId>,
        expected_version: Option<u64>,
        value_hash: Option<pesos_crypto::Digest>,
    ) -> Result<u64, PesosError> {
        let key = key.into();
        let key_lock = self.key_locks.lock_for(&key);
        let _write_guard = key_lock.lock();

        let mut meta = self
            .load_metadata_locked(&key)
            .unwrap_or_else(|| ObjectMetadata::new(key.key()));
        let new_version = if meta.versions.is_empty() {
            0
        } else {
            meta.latest_version + 1
        };
        if let Some(expected) = expected_version {
            if expected != new_version {
                return Err(PesosError::VersionConflict {
                    expected,
                    got: new_version,
                });
            }
        }

        let encoded: Payload = self.crypter.seal(key.key(), new_version, value).into();
        self.replicated_put(&key, Arc::from(data_key(key.key(), new_version)), encoded)?;

        let policy_hash = policy_id
            .or(meta.policy_id)
            .map(|p| p.0.to_vec())
            .unwrap_or_default();
        if policy_id.is_some() {
            meta.policy_id = policy_id;
        }
        meta.record_version(VersionMeta {
            version: new_version,
            size: value.len() as u64,
            value_hash: value_hash
                .unwrap_or_else(|| pesos_crypto::sha256(value))
                .to_vec(),
            policy_hash,
        });
        self.persist_metadata(&key, &meta)?;

        self.object_cache
            .put(key, Arc::new(value.to_vec()), new_version);
        Ok(new_version)
    }

    /// Applies a write shipped through a partition replication log.
    ///
    /// Unlike [`PesosStore::put_object`] this path performs no policy work
    /// and no version-sequence invention: a record carrying
    /// `Some(version)` lands at exactly that version (the primary already
    /// assigned it), and a record carrying `None` — an asynchronous write
    /// that was acknowledged before the primary assigned its version —
    /// takes the next free slot in log order. Re-applying a version that is
    /// already recorded is a no-op, which makes replaying an unacked log
    /// tail during promotion idempotent.
    pub fn apply_replicated_put<'a>(
        &self,
        key: impl Into<HashedKey<'a>>,
        value: &[u8],
        policy_id: Option<PolicyId>,
        version: Option<u64>,
    ) -> Result<u64, PesosError> {
        let key = key.into();
        let key_lock = self.key_locks.lock_for(&key);
        let _write_guard = key_lock.lock();

        let mut meta = self
            .load_metadata_locked(&key)
            .unwrap_or_else(|| ObjectMetadata::new(key.key()));
        let next_free = if meta.versions.is_empty() {
            0
        } else {
            meta.latest_version + 1
        };
        let version = version.unwrap_or(next_free);
        if meta.version(version).is_some() {
            return Ok(version);
        }

        let encoded: Payload = self.crypter.seal(key.key(), version, value).into();
        self.replicated_put(&key, Arc::from(data_key(key.key(), version)), encoded)?;

        let policy_hash = policy_id
            .or(meta.policy_id)
            .map(|p| p.0.to_vec())
            .unwrap_or_default();
        if policy_id.is_some() {
            meta.policy_id = policy_id;
        }
        meta.record_version(VersionMeta {
            version,
            size: value.len() as u64,
            value_hash: pesos_crypto::sha256(value).to_vec(),
            policy_hash,
        });
        // Records for one key normally arrive in version order, but two
        // racing appenders on the primary can invert neighbouring entries;
        // the version index, not the arrival order, is authoritative.
        meta.versions.sort_by_key(|v| v.version);
        meta.latest_version = meta.versions.last().map(|v| v.version).unwrap_or(version);
        self.persist_metadata(&key, &meta)?;

        if version == meta.latest_version {
            self.object_cache
                .put(key, Arc::new(value.to_vec()), version);
        }
        Ok(version)
    }

    /// Retrieves the latest version of `key`.
    pub fn get_object<'a>(
        &self,
        key: impl Into<HashedKey<'a>>,
    ) -> Result<(Arc<Vec<u8>>, u64), PesosError> {
        let key = key.into();
        if let Some((value, version)) = self.object_cache.get(&key) {
            return Ok((value, version));
        }
        let meta = self
            .get_metadata(&key)
            .ok_or_else(|| PesosError::ObjectNotFound(key.key().to_string()))?;
        let version = meta.latest_version;
        let value = self.get_object_version(&key, version)?;
        let value = Arc::new(value);
        // Fill the cache under the key lock, and only if what we read from
        // the drives is still the latest content: without the re-check, a
        // delete or a newer write completing between our drive read and
        // this insert would be shadowed by the stale value indefinitely.
        // The hash comparison also covers delete-and-recreate, where the
        // version numbers restart and can collide.
        {
            // Hash outside the lock: the value is immutable and SHA-256 is
            // the expensive part; only the metadata comparison needs the
            // lock.
            let value_hash = pesos_crypto::sha256(&value);
            let key_lock = self.key_locks.lock_for(&key);
            let fill_guard = key_lock.lock();
            let still_latest = self.metadata.get(&key).is_some_and(|m| {
                m.latest_version == version
                    && m.version(version)
                        .is_some_and(|v| v.value_hash == value_hash)
            });
            if still_latest {
                self.object_cache.put(&key, Arc::clone(&value), version);
            }
            drop(fill_guard);
            self.key_locks.release_if_unused(&key, &key_lock);
        }
        Ok((value, version))
    }

    /// Retrieves a specific stored version of `key` (used by versioned-store
    /// history reads and `objSays` evaluation).
    pub fn get_object_version<'a>(
        &self,
        key: impl Into<HashedKey<'a>>,
        version: u64,
    ) -> Result<Vec<u8>, PesosError> {
        let key = key.into();
        let stored = self.replicated_get(&key, Arc::from(data_key(key.key(), version)))?;
        self.crypter
            .unseal(key.key(), version, &stored)
            .map_err(|e| PesosError::Backend(format!("decryption failed: {e}")))
    }

    /// Deletes `key` (all retained versions and its metadata).
    ///
    /// All per-version, per-replica deletes go out as one scatter-gather
    /// batch that is joined before the key lock is released, so a put that
    /// re-creates the key afterwards can never race a still-queued delete.
    pub fn delete_object<'a>(&self, key: impl Into<HashedKey<'a>>) -> Result<(), PesosError> {
        let key = key.into();
        let key_lock = self.key_locks.lock_for(&key);
        let write_guard = key_lock.lock();

        let meta = self
            .load_metadata_checked(&key)?
            .ok_or_else(|| PesosError::ObjectNotFound(key.key().to_string()))?;
        let targets = self.targets_for(&key);
        let mut backend_keys: Vec<Arc<[u8]>> = meta
            .versions
            .iter()
            .map(|v| Arc::from(data_key(key.key(), v.version)))
            .collect();
        backend_keys.push(Arc::from(meta_key(key.key())));

        if self.serial_replication {
            for backend_key in &backend_keys {
                for &index in &targets {
                    self.backend_delete(index, Arc::clone(backend_key));
                }
            }
        } else {
            // pesos-lint: allow(guard_across_io, "delete batch is joined before the key lock is released so a put re-creating the key cannot race a queued delete")
            let set = self.asyscall.submit_batch_pooled(
                &self.unit_pool,
                backend_keys.iter().flat_map(|backend_key| {
                    targets.iter().map(|&index| {
                        // pesos-lint: allow(panic_freedom, "drive indices come from targets_for, which is bounded by the client list")
                        let client = Arc::clone(&self.clients[index]);
                        let backend_key = Arc::clone(backend_key);
                        move || {
                            // Missing replicas are fine: the key may never
                            // have reached this drive.
                            let _ = client.delete(&backend_key, &[], true);
                        }
                    })
                }),
            )?;
            set.join()?;
        }
        self.metadata.remove(&key);
        self.object_cache.invalidate(&key);
        drop(write_guard);
        self.key_locks.release_if_unused(&key, &key_lock);
        Ok(())
    }

    /// Associates `policy_id` with an existing object without changing its
    /// contents.
    pub fn attach_policy<'a>(
        &self,
        key: impl Into<HashedKey<'a>>,
        policy_id: PolicyId,
    ) -> Result<(), PesosError> {
        let key = key.into();
        let key_lock = self.key_locks.lock_for(&key);
        let _write_guard = key_lock.lock();

        let mut meta = self
            .load_metadata_locked(&key)
            .ok_or_else(|| PesosError::ObjectNotFound(key.key().to_string()))?;
        meta.policy_id = Some(policy_id);
        self.persist_metadata(&key, &meta)
    }

    /// Returns a read-only view adapter usable by the policy interpreter.
    pub fn view(&self) -> StoreView<'_> {
        StoreView { store: self }
    }

    /// Number of objects resident in the in-enclave metadata map.
    ///
    /// An in-memory approximation of the store's population (puts insert,
    /// deletes remove, cold read-throughs fill) — exactly what load-aware
    /// rebalancing needs; the drive-authoritative count is
    /// [`PesosStore::list_keys`].
    pub fn resident_object_count(&self) -> usize {
        self.metadata.len()
    }

    /// The names of the resident objects (same in-memory approximation as
    /// [`PesosStore::resident_object_count`]); the rebalancer hashes these
    /// to pick a weighted split point.
    pub fn resident_keys(&self) -> Vec<String> {
        self.metadata.keys()
    }

    // ------------------------------------------------------------------
    // Hash-range migration (cluster layer)
    // ------------------------------------------------------------------

    /// Lists every object key stored on this store's drives.
    ///
    /// Authoritative, not a cache dump: each drive's metadata namespace
    /// (`m/…`) is scanned with paginated `GetKeyRange` commands through the
    /// asynchronous system-call interface, and the union across drives is
    /// returned (replication stores a record on several drives). The
    /// cluster layer drives this during hash-range migration, where
    /// missing a key would mean losing it — which is why an *offline*
    /// drive is an error here rather than a silently narrowed scan: its
    /// keys may exist nowhere else, and a migration that believed this
    /// listing complete would strand them.
    pub fn list_keys(&self) -> Result<Vec<String>, PesosError> {
        self.list_keys_with_prefix("")
    }

    /// Like [`PesosStore::list_keys`] but returns only keys beginning with
    /// `prefix` (same drive-authoritative scan, narrowed to the prefix's
    /// slice of the metadata namespace).
    ///
    /// The cluster layer uses this during hash-range migration to
    /// demand-pull a whole *placement group* at once: every sibling of a
    /// requested key shares its routing prefix, so one bounded prefix scan
    /// finds the referenced objects a policy may consult.
    pub fn list_keys_with_prefix(&self, prefix: &str) -> Result<Vec<String>, PesosError> {
        const BATCH: u32 = 512;
        let online = self.online_indices();
        if online.len() != self.clients.len() {
            return Err(PesosError::Backend(format!(
                "cannot list keys authoritatively: {} of {} drives offline",
                self.clients.len() - online.len(),
                self.clients.len()
            )));
        }
        let mut keys = std::collections::BTreeSet::new();
        for &index in &online {
            let mut start: Vec<u8> = format!("m/{prefix}").into_bytes();
            // Object keys are UTF-8 and therefore never contain the byte
            // 0xff, so appending it to the scan prefix forms an inclusive
            // upper bound covering exactly the keys that start with
            // `prefix` (the whole "m/…" namespace for the empty prefix).
            let end = {
                let mut end = start.clone();
                end.push(0xff);
                end
            };
            loop {
                // pesos-lint: allow(panic_freedom, "drive indices come from targets_for, which is bounded by the client list")
                let client = Arc::clone(&self.clients[index]);
                let range_start = start.clone();
                let range_end = end.clone();
                let batch = self
                    .asyscall
                    .submit(move || client.key_range(&range_start, &range_end, BATCH))?
                    .map_err(|e| PesosError::Backend(e.to_string()))?;
                let len = batch.len();
                for raw in batch {
                    if let Some(stripped) = raw.strip_prefix(b"m/") {
                        if let Ok(key) = std::str::from_utf8(stripped) {
                            keys.insert(key.to_string());
                        }
                    }
                    // The next page starts just after the last key seen.
                    start = raw;
                    start.push(0);
                }
                if len < BATCH as usize {
                    break;
                }
            }
        }
        Ok(keys.into_iter().collect())
    }

    /// Reads one object out for migration — metadata plus the plaintext of
    /// every retained version — under the key's write lock, *without*
    /// removing anything.
    ///
    /// Returns `Ok(None)` when the key does not exist. This is the source
    /// half of a cross-controller migration; the destination applies the
    /// export with [`PesosStore::import_object`] and only then does the
    /// coordinator delete the source copy ([`PesosStore::delete_object`]),
    /// so a failed import can never lose the object. Versions beyond the
    /// retention bound ([`crate::metadata::MAX_VERSION_HISTORY`]) are not
    /// exported, mirroring what [`PesosStore::delete_object`] deletes.
    pub fn export_object<'a>(
        &self,
        key: impl Into<HashedKey<'a>>,
    ) -> Result<Option<ObjectExport>, PesosError> {
        let key = key.into();
        let key_lock = self.key_locks.lock_for(&key);
        let write_guard = key_lock.lock();

        let meta = match self.load_metadata_checked(&key) {
            Ok(Some(meta)) => meta,
            // The drives answered: there is genuinely nothing to export.
            // A drive *fault* stays an error — reporting it as "never
            // existed" would let a migration pull settle a key whose
            // record simply could not be read.
            Ok(None) => {
                drop(write_guard);
                self.key_locks.release_if_unused(&key, &key_lock);
                return Ok(None);
            }
            Err(e) => {
                drop(write_guard);
                self.key_locks.release_if_unused(&key, &key_lock);
                return Err(e);
            }
        };
        let mut versions = Vec::with_capacity(meta.versions.len());
        for v in &meta.versions {
            let stored = self.replicated_get(&key, Arc::from(data_key(key.key(), v.version)))?;
            let plain = self
                .crypter
                .unseal(key.key(), v.version, &stored)
                .map_err(|e| PesosError::Backend(format!("decryption failed: {e}")))?;
            versions.push((v.version, plain));
        }
        drop(write_guard);
        self.key_locks.release_if_unused(&key, &key_lock);
        Ok(Some(ObjectExport { meta, versions }))
    }

    /// Applies an [`ObjectExport`] produced by another store: re-seals every
    /// version under this store's placement and persists the metadata
    /// record verbatim (same version numbers, policy association and
    /// content hashes), all under the key's write lock.
    pub fn import_object(&self, export: &ObjectExport) -> Result<(), PesosError> {
        let key = HashedKey::new(&export.meta.key);
        let key_lock = self.key_locks.lock_for(&key);
        let write_guard = key_lock.lock();

        for (version, plain) in &export.versions {
            let encoded: Payload = self.crypter.seal(key.key(), *version, plain).into();
            self.replicated_put(&key, Arc::from(data_key(key.key(), *version)), encoded)?;
        }
        self.persist_metadata(&key, &export.meta)?;
        drop(write_guard);
        self.key_locks.release_if_unused(&key, &key_lock);
        Ok(())
    }
}

/// One object read out of a store for migration: its metadata record and
/// the plaintext of every retained version.
///
/// Plaintext because source and destination place (and may key) ciphertext
/// differently; the destination re-seals on import. The export never leaves
/// the (simulated) enclave boundary — migration is controller-to-controller
/// inside the trust domain, exactly like the original single controller
/// moving an object between its own drives.
#[derive(Debug, Clone)]
pub struct ObjectExport {
    /// The metadata record, persisted verbatim at the destination.
    pub meta: ObjectMetadata,
    /// `(version, plaintext)` for every retained version, oldest first.
    pub versions: Vec<(u64, Vec<u8>)>,
}

/// Adapter exposing the store as an [`ObjectStoreView`] for policy checks.
pub struct StoreView<'a> {
    store: &'a PesosStore,
}

impl ObjectStoreView for StoreView<'_> {
    fn exists(&self, key: &str) -> bool {
        self.store.get_metadata(key).is_some()
    }

    fn current_version(&self, key: &str) -> Option<u64> {
        self.store.get_metadata(key).map(|m| m.latest_version)
    }

    fn object_size(&self, key: &str, version: u64) -> Option<u64> {
        self.store
            .get_metadata(key)
            .and_then(|m| m.version(version).map(|v| v.size))
    }

    fn object_hash(&self, key: &str, version: u64) -> Option<Vec<u8>> {
        self.store
            .get_metadata(key)
            .and_then(|m| m.version(version).map(|v| v.value_hash.clone()))
    }

    fn policy_hash(&self, key: &str, version: u64) -> Option<Vec<u8>> {
        self.store
            .get_metadata(key)
            .and_then(|m| m.version(version).map(|v| v.policy_hash.clone()))
    }

    fn object_tuples(&self, key: &str, version: u64) -> Vec<Tuple> {
        // Objects accessed during policy evaluation are cached so that
        // content-based policies avoid repeated disk reads (paper §4.2).
        let contents = if let Some((cached, cached_version)) = self.store.object_cache.get(key) {
            if cached_version == version {
                Some((*cached).clone())
            } else {
                self.store.get_object_version(key, version).ok()
            }
        } else {
            self.store.get_object_version(key, version).ok()
        };
        match contents {
            Some(bytes) => std::str::from_utf8(&bytes)
                .map(|text| text.lines().filter_map(Tuple::parse).collect())
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pesos_kinetic::{ClientConfig, DriveConfig, KineticDrive};
    use pesos_sgx::{EnclaveConfig, ExecutionMode, SgxCostModel};

    fn store_with(drive_count: usize, replication: usize, serial: bool) -> PesosStore {
        let drives: Vec<Arc<KineticDrive>> = (0..drive_count)
            .map(|i| Arc::new(KineticDrive::new(DriveConfig::simulator(format!("kd-{i}")))))
            .collect();
        let clients: Vec<Arc<KineticClient>> = drives
            .iter()
            .map(|d| {
                Arc::new(
                    KineticClient::connect(Arc::clone(d), ClientConfig::factory_default()).unwrap(),
                )
            })
            .collect();
        let cost = pesos_sgx::cost::ModeCost::new(ExecutionMode::Native, SgxCostModel::zero());
        let enclave = Arc::new(Enclave::create(EnclaveConfig::default(), cost).unwrap());
        let asyscall = Arc::new(AsyscallInterface::new(4, 16, cost));
        PesosStore::new(
            DriveSet::from_drives(drives),
            clients,
            ObjectCrypter::new(&[1u8; 32], true),
            StoreOptions {
                object_cache_bytes: 1024 * 1024,
                policy_cache_capacity: 128,
                replication_factor: replication,
                lock_shards: 8,
                serial_replication: serial,
            },
            asyscall,
            enclave,
        )
    }

    fn store(drive_count: usize, replication: usize) -> PesosStore {
        store_with(drive_count, replication, false)
    }

    #[test]
    fn object_round_trip_with_versions() {
        let s = store(1, 1);
        assert_eq!(s.put_object("users/alice", b"v0", None).unwrap(), 0);
        assert_eq!(s.put_object("users/alice", b"v1", None).unwrap(), 1);
        let (value, version) = s.get_object("users/alice").unwrap();
        assert_eq!(&**value, b"v1");
        assert_eq!(version, 1);
        assert_eq!(s.get_object_version("users/alice", 0).unwrap(), b"v0");
        assert!(matches!(
            s.get_object("missing"),
            Err(PesosError::ObjectNotFound(_))
        ));
    }

    #[test]
    fn replicated_apply_mirrors_primary_versions_idempotently() {
        let primary = store(1, 1);
        let backup = store(1, 1);
        // A log of explicit-version records (sync puts) mirrors exactly.
        for value in [b"v0".as_slice(), b"v1", b"v2"] {
            let v = primary.put_object("acct/a", value, None).unwrap();
            backup
                .apply_replicated_put("acct/a", value, None, Some(v))
                .unwrap();
        }
        assert_eq!(&**backup.get_object("acct/a").unwrap().0, b"v2");
        assert_eq!(backup.get_object_version("acct/a", 0).unwrap(), b"v0");
        // Replaying a tail is a no-op, not a version bump.
        backup
            .apply_replicated_put("acct/a", b"v2", None, Some(2))
            .unwrap();
        assert_eq!(backup.get_object("acct/a").unwrap().1, 2);
        // Version-less records (acked async writes) self-assign in log
        // order.
        assert_eq!(
            backup
                .apply_replicated_put("acct/a", b"v3", None, None)
                .unwrap(),
            3
        );
        // Out-of-order arrival from racing appenders converges on the
        // version index.
        backup
            .apply_replicated_put("acct/b", b"late", None, Some(1))
            .unwrap();
        backup
            .apply_replicated_put("acct/b", b"early", None, Some(0))
            .unwrap();
        let (value, version) = backup.get_object("acct/b").unwrap();
        assert_eq!(version, 1);
        assert_eq!(&**value, b"late");
    }

    #[test]
    fn objects_are_encrypted_on_the_drives() {
        let s = store(1, 1);
        s.put_object("secret", b"plaintext-contents", None).unwrap();
        let drive = s.drives().get(0).unwrap();
        let raw = drive.peek(&data_key("secret", 0)).unwrap();
        assert_ne!(raw.value, b"plaintext-contents");
        assert!(!raw
            .value
            .windows(b"plaintext".len())
            .any(|w| w == b"plaintext"));
    }

    #[test]
    fn delete_removes_data_and_metadata() {
        let s = store(1, 1);
        s.put_object("tmp", b"x", None).unwrap();
        s.put_object("tmp", b"y", None).unwrap();
        s.delete_object("tmp").unwrap();
        assert!(s.get_metadata("tmp").is_none());
        assert!(s.get_object("tmp").is_err());
        assert!(s.delete_object("tmp").is_err());
    }

    #[test]
    fn policies_persist_and_reload() {
        let s = store(1, 1);
        let id = s.put_policy("read :- sessionKeyIs(\"alice\")").unwrap();
        // A hit from the cache.
        assert!(s.load_policy(&id).is_ok());
        // Clear the cache to force the disk path.
        s.policy_cache.clear();
        let reloaded = s.load_policy(&id).unwrap();
        assert_eq!(reloaded.id(), id);
        assert!(matches!(
            s.load_policy(&PolicyId([0u8; 32])),
            Err(PesosError::PolicyNotFound(_))
        ));
    }

    #[test]
    fn replication_places_copies_on_multiple_drives() {
        let s = store(3, 3);
        s.put_object("replicated", b"payload", None).unwrap();
        let copies = s
            .drives()
            .iter()
            .filter(|d| d.peek(&data_key("replicated", 0)).is_some())
            .count();
        assert_eq!(copies, 3);
    }

    #[test]
    fn replicated_put_issues_replica_writes_as_one_batch() {
        let s = store(3, 3);
        let before = s.asyscall_stats();
        s.put_object("batched", b"payload", None).unwrap();
        let after = s.asyscall_stats();
        // One batch for the 3 data replicas, one for the 3 metadata
        // replicas (plus a raced metadata read batch on the cold lookup).
        assert!(
            after.batches >= before.batches + 2,
            "no scatter-gather batches were issued: {after:?}"
        );
        let copies = s
            .drives()
            .iter()
            .filter(|d| d.peek(&data_key("batched", 0)).is_some())
            .count();
        assert_eq!(copies, 3);
    }

    #[test]
    fn serial_and_batched_replication_produce_identical_drive_state() {
        let serial = store_with(3, 2, true);
        let batched = store_with(3, 2, false);
        for s in [&serial, &batched] {
            for i in 0..20 {
                let key = format!("obj/{i}");
                s.put_object(&key, format!("v0 of {i}").as_bytes(), None)
                    .unwrap();
                if i % 3 == 0 {
                    s.put_object(&key, format!("v1 of {i}").as_bytes(), None)
                        .unwrap();
                }
                if i % 5 == 0 {
                    s.delete_object(&key).unwrap();
                }
            }
        }
        for (a, b) in serial.drives().iter().zip(batched.drives().iter()) {
            assert_eq!(a.key_count(), b.key_count());
        }
        for i in 0..20 {
            if i % 5 == 0 {
                continue; // deleted
            }
            let key = format!("obj/{i}");
            for version in 0..=u64::from(i % 3 == 0) {
                let raw_key = data_key(&key, version);
                for (a, b) in serial.drives().iter().zip(batched.drives().iter()) {
                    match (a.peek(&raw_key), b.peek(&raw_key)) {
                        (Some(x), Some(y)) => {
                            assert_eq!(x.value, y.value, "divergent replica for {key} v{version}")
                        }
                        (None, None) => {}
                        other => panic!("presence mismatch for {key} v{version}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn reads_survive_primary_drive_failure_with_replication() {
        let s = store(3, 2);
        s.put_object("ha-object", b"payload", None).unwrap();
        // Take the primary replica offline.
        let targets = crate::placement::placement("ha-object", 3, 2);
        s.drives().get(targets[0]).unwrap().set_online(false);
        // Invalidate the cache so the read truly goes to the drives.
        s.object_cache.invalidate("ha-object");
        let (value, _) = s.get_object("ha-object").unwrap();
        assert_eq!(&**value, b"payload");
    }

    #[test]
    fn attach_policy_updates_metadata() {
        let s = store(1, 1);
        s.put_object("doc", b"contents", None).unwrap();
        let id = s.put_policy("read :- sessionKeyIs(\"alice\")").unwrap();
        s.attach_policy("doc", id).unwrap();
        assert_eq!(s.get_metadata("doc").unwrap().policy_id, Some(id));
        assert!(s.attach_policy("missing", id).is_err());
    }

    #[test]
    fn view_exposes_object_facts() {
        let s = store(1, 1);
        s.put_object("doc", b"hello world", None).unwrap();
        s.put_object("doc.log", b"read(\"doc\",0,\"alice\")", None)
            .unwrap();
        let view = s.view();
        assert!(view.exists("doc"));
        assert!(!view.exists("nope"));
        assert_eq!(view.current_version("doc"), Some(0));
        assert_eq!(view.object_size("doc", 0), Some(11));
        assert_eq!(
            view.object_hash("doc", 0).unwrap(),
            pesos_crypto::sha256(b"hello world").to_vec()
        );
        let tuples = view.object_tuples("doc.log", 0);
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].name, "read");
    }

    #[test]
    fn list_keys_is_drive_authoritative() {
        let s = store(2, 2);
        assert!(s.list_keys().unwrap().is_empty());
        let mut expected = Vec::new();
        for i in 0..30 {
            let key = format!("list/{i:03}");
            s.put_object(&key, b"v", None).unwrap();
            expected.push(key);
        }
        s.put_object("other/ns", b"v", None).unwrap();
        expected.push("other/ns".to_string());
        expected.sort();
        assert_eq!(s.list_keys().unwrap(), expected);
        s.delete_object("list/000").unwrap();
        assert_eq!(s.list_keys().unwrap().len(), expected.len() - 1);
    }

    #[test]
    fn export_and_import_move_objects_between_stores() {
        let src = store(2, 2);
        let dst = store(3, 1);
        src.put_object("moved", b"v0", None).unwrap();
        src.put_object("moved", b"v1", None).unwrap();
        let policy = src.put_policy("read :- sessionKeyIs(\"alice\")").unwrap();
        src.attach_policy("moved", policy).unwrap();

        let export = src.export_object("moved").unwrap().expect("object exists");
        assert_eq!(export.meta.key, "moved");
        assert_eq!(export.meta.policy_id, Some(policy));
        assert_eq!(
            export.versions,
            vec![(0, b"v0".to_vec()), (1, b"v1".to_vec())]
        );
        // The export is non-destructive: the source still serves the
        // object until the migration coordinator deletes it post-import.
        assert_eq!(&**src.get_object("moved").unwrap().0, b"v1");
        src.delete_object("moved").unwrap();
        assert!(src.get_metadata("moved").is_none());
        assert!(src.get_object("moved").is_err());
        assert!(src.list_keys().unwrap().is_empty());
        assert!(src.export_object("moved").unwrap().is_none());

        dst.import_object(&export).unwrap();
        let meta = dst.get_metadata("moved").unwrap();
        assert_eq!(meta.latest_version, 1);
        assert_eq!(meta.policy_id, Some(policy));
        let (value, version) = dst.get_object("moved").unwrap();
        assert_eq!(&**value, b"v1");
        assert_eq!(version, 1);
        // Version history survives the move.
        assert_eq!(dst.get_object_version("moved", 0).unwrap(), b"v0");
        // Writes continue the version sequence at the destination.
        assert_eq!(dst.put_object("moved", b"v2", None).unwrap(), 2);
    }

    #[test]
    fn zero_byte_object_survives_put_get_export_import() {
        // Regression for the wire-presence bug: a zero-length payload used
        // to decode as "absent". The whole lifecycle must treat it as a
        // present, empty object — with and without encryption (the
        // plaintext path stores the smallest frames).
        for encrypt in [true, false] {
            let make = |drives: usize| {
                let mut s = store(drives, 1);
                if !encrypt {
                    s.crypter = ObjectCrypter::new(&[1u8; 32], false);
                }
                s
            };
            let src = make(1);
            assert_eq!(src.put_object("empty", b"", None).unwrap(), 0);
            let (value, version) = src.get_object("empty").unwrap();
            assert!(value.is_empty(), "encrypt={encrypt}");
            assert_eq!(version, 0);
            assert_eq!(src.get_object_version("empty", 0).unwrap(), b"");

            let export = src.export_object("empty").unwrap().expect("exists");
            assert_eq!(export.versions, vec![(0, Vec::new())]);

            let dst = make(2);
            dst.import_object(&export).unwrap();
            let (value, version) = dst.get_object("empty").unwrap();
            assert!(value.is_empty(), "encrypt={encrypt}");
            assert_eq!(version, 0);
            // Still distinct from a missing object.
            assert!(dst.get_object("missing").is_err());
            dst.delete_object("empty").unwrap();
            assert!(dst.get_object("empty").is_err());
        }
    }

    #[test]
    fn list_keys_with_prefix_scans_exactly_the_prefix_slice() {
        let s = store(2, 2);
        for key in [
            "doc",
            "doc.log",
            "doc.v2",
            "docs/extra",
            "dot",
            "a.b",
            ".log",
            ".",
        ] {
            s.put_object(key, b"v", None).unwrap();
        }
        let mut got = s.list_keys_with_prefix("doc").unwrap();
        got.sort();
        assert_eq!(got, vec!["doc", "doc.log", "doc.v2", "docs/extra"]);
        assert_eq!(s.list_keys_with_prefix("doc.").unwrap().len(), 2);
        assert_eq!(s.list_keys_with_prefix(".").unwrap(), vec![".", ".log"]);
        assert!(s.list_keys_with_prefix("zzz").unwrap().is_empty());
        // The empty prefix is the full listing.
        assert_eq!(s.list_keys_with_prefix("").unwrap().len(), 8);
        assert_eq!(s.list_keys().unwrap().len(), 8);
        // Same offline-drive refusal as the full listing: a narrowed scan
        // could silently miss a group member that lives only there.
        s.drives().get(1).unwrap().set_online(false);
        assert!(matches!(
            s.list_keys_with_prefix("doc"),
            Err(PesosError::Backend(_))
        ));
    }

    #[test]
    fn resident_accounting_tracks_puts_and_deletes() {
        let s = store(1, 1);
        assert_eq!(s.resident_object_count(), 0);
        for i in 0..5 {
            s.put_object(&format!("r/{i}"), b"v", None).unwrap();
        }
        s.put_object("r/0", b"v2", None).unwrap(); // new version, same key
        assert_eq!(s.resident_object_count(), 5);
        let mut names = s.resident_keys();
        names.sort();
        assert_eq!(names, (0..5).map(|i| format!("r/{i}")).collect::<Vec<_>>());
        s.delete_object("r/3").unwrap();
        assert_eq!(s.resident_object_count(), 4);
    }

    #[test]
    fn list_keys_refuses_to_run_with_a_drive_offline() {
        let s = store(2, 1);
        s.put_object("present", b"v", None).unwrap();
        s.drives().get(1).unwrap().set_online(false);
        // A narrowed scan could silently miss keys that live only on the
        // offline drive, so the listing must fail instead.
        assert!(matches!(s.list_keys(), Err(PesosError::Backend(_))));
        s.drives().get(1).unwrap().set_online(true);
        assert_eq!(s.list_keys().unwrap(), vec!["present".to_string()]);
    }

    #[test]
    fn completion_pools_recycle_on_the_drive_path() {
        let s = store(1, 1);
        for i in 0..50 {
            let key = format!("pooled/{i}");
            s.put_object(&key, b"v", None).unwrap();
        }
        let stats = s.completion_pool_stats();
        assert!(
            stats.reused > stats.allocated,
            "drive-path completions barely recycled: {stats:?}"
        );
    }

    #[test]
    fn put_object_cas_rejects_wrong_expected_version() {
        let s = store(1, 1);
        assert_eq!(s.put_object_cas("doc", b"v0", None, Some(0)).unwrap(), 0);
        assert!(matches!(
            s.put_object_cas("doc", b"v2", None, Some(2)),
            Err(PesosError::VersionConflict {
                expected: 2,
                got: 1
            })
        ));
        assert_eq!(s.put_object_cas("doc", b"v1", None, Some(1)).unwrap(), 1);
        // Racing CAS writers expecting the same version: exactly one wins.
        let s = Arc::new(store(1, 1));
        s.put_object("raced", b"v0", None).unwrap();
        let winners: usize = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.put_object_cas("raced", b"new", None, Some(1)).is_ok())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&won| won)
            .count();
        assert_eq!(winners, 1, "exactly one CAS writer must land at version 1");
        assert_eq!(s.get_metadata("raced").unwrap().latest_version, 1);
    }

    #[test]
    fn concurrent_writers_to_one_key_get_distinct_contiguous_versions() {
        let s = Arc::new(store(1, 1));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..5)
                    .map(|_| s.put_object("contended", b"x", None).unwrap())
                    .collect::<Vec<u64>>()
            }));
        }
        let mut versions: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        versions.sort_unstable();
        let expected: Vec<u64> = (0..40).collect();
        assert_eq!(
            versions, expected,
            "versions must be distinct and contiguous"
        );
        assert_eq!(s.get_metadata("contended").unwrap().latest_version, 39);
    }
}
