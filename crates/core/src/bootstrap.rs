//! Controller bootstrap: attestation, secret provisioning and exclusive
//! drive takeover.
//!
//! The paper's workflow (§1, §3.1): when Pesos starts, the attestation
//! service verifies that the controller runs on the correct hardware and
//! that its binary has not been altered, and only then provides the
//! encryption and authentication keys used at runtime. The controller then
//! connects to its assigned Kinetic disks and takes exclusive control by
//! removing every other user account, locking out the cloud provider.

use std::sync::Arc;

use pesos_kinetic::protocol::AccountSpec;
use pesos_kinetic::{ClientConfig, DriveConfig, DriveSet, KineticClient, KineticDrive, Permission};
use pesos_sgx::attestation::{AttestationService, ProvisionedSecrets, QuotingEnclave};
use pesos_sgx::cost::ModeCost;
use pesos_sgx::{AsyscallInterface, Enclave};

use crate::config::ControllerConfig;
use crate::error::PesosError;

/// The Pesos administrative identity installed on every drive.
pub const PESOS_ADMIN_IDENTITY: i64 = 100;

/// Cluster version set once Pesos owns a drive, so that stale clients using
/// the factory configuration are rejected outright.
pub const PESOS_CLUSTER_VERSION: u64 = 1;

/// Everything the bootstrap produces for the controller.
pub struct BootstrapOutcome {
    /// The simulated enclave.
    pub enclave: Arc<Enclave>,
    /// The asynchronous system-call interface.
    pub asyscall: Arc<AsyscallInterface>,
    /// The provisioned runtime secrets.
    pub secrets: ProvisionedSecrets,
    /// The drives now exclusively owned by this controller.
    pub drives: DriveSet,
    /// Authenticated admin clients, one per drive (same order).
    pub clients: Vec<Arc<KineticClient>>,
    /// Summary for logging/auditing.
    pub report: BootstrapReport,
}

/// Human-readable summary of the bootstrap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootstrapReport {
    /// Hex enclave measurement that was attested.
    pub measurement: String,
    /// Identifiers of the drives taken over.
    pub drives: Vec<String>,
    /// Hex fingerprints of each drive's device certificate (pinned so that
    /// whole-drive replacement is detectable on restart).
    pub device_certificates: Vec<String>,
    /// Whether object encryption is enabled.
    pub encryption_enabled: bool,
}

/// Derives the per-drive admin secret from the provisioned credentials.
pub fn admin_secret_for(secrets: &ProvisionedSecrets, drive_id: &str) -> Vec<u8> {
    secrets
        .disk_credentials
        .iter()
        .find(|(id, _)| id == drive_id)
        .map(|(_, s)| s.clone())
        .unwrap_or_else(|| {
            pesos_crypto::hkdf::derive_key32(&secrets.storage_master_key, drive_id.as_bytes())
                .to_vec()
        })
}

/// Runs the full bootstrap for `config`, creating the drives in the process
/// (in a real deployment the drives already exist on the network; the
/// simulator creates them here).
pub fn bootstrap(config: &ControllerConfig) -> Result<BootstrapOutcome, PesosError> {
    config.validate()?;
    let cost = ModeCost::new(config.mode, config.cost_model);

    // 1. Load the enclave and compute its measurement.
    let enclave = Arc::new(Enclave::create(config.enclave.clone(), cost)?);
    let asyscall = Arc::new(AsyscallInterface::new(
        config.syscall_threads,
        config.syscall_threads * 8,
        cost,
    ));

    // 2. Remote attestation against the attestation service, which holds the
    //    runtime secrets. In this reproduction the service is instantiated
    //    in-process with freshly generated secrets; its verification logic is
    //    identical to a remote deployment.
    let drive_ids: Vec<String> = (0..config.drive_count)
        .map(|i| format!("kd-{i:02}"))
        .collect();
    let secrets = ProvisionedSecrets {
        tls_key_seed: pesos_crypto::sha256(b"pesos-controller-tls-seed").to_vec(),
        disk_credentials: drive_ids
            .iter()
            .map(|id| {
                (
                    id.clone(),
                    pesos_crypto::hkdf::derive_key32(b"pesos-disk-credential", id.as_bytes())
                        .to_vec(),
                )
            })
            .collect(),
        storage_master_key: pesos_crypto::hkdf::derive_key32(b"pesos-storage-master", b"v1"),
    };

    let quoting = QuotingEnclave::new(b"pesos-platform");
    let mut service = AttestationService::new(secrets);
    service.trust_platform(quoting.platform_public_key());
    service.expect_measurement(enclave.measurement());

    let mut report_data = [0u8; 64];
    // pesos-lint: allow(panic_freedom, "report_data is a fixed 64-byte array and sha256 yields 32 bytes")
    report_data[..32].copy_from_slice(&pesos_crypto::sha256(b"pesos-provisioning-key"));
    let quote = quoting.quote(&enclave, report_data);
    let sealed = service
        .provision(&quote)
        .map_err(|e| PesosError::Bootstrap(e.to_string()))?;
    let secrets = AttestationService::unseal_provisioned(&report_data, &sealed)
        .map_err(|e| PesosError::Bootstrap(e.to_string()))?;

    // 3. Create/attach the drives and take exclusive control of each.
    let mut drives = DriveSet::new();
    let mut clients = Vec::new();
    let mut device_certificates = Vec::new();

    for id in &drive_ids {
        let drive_config = match config.drive_backend {
            pesos_kinetic::backend::BackendKind::Memory => DriveConfig::simulator(id.clone()),
            pesos_kinetic::backend::BackendKind::Hdd => DriveConfig::hdd(id.clone()),
        };
        let drive = Arc::new(KineticDrive::new(drive_config));

        // Pin the device certificate before trusting the drive with data.
        drive
            .device_certificate()
            .verify_signature()
            .map_err(|e| PesosError::Bootstrap(format!("device certificate invalid: {e}")))?;
        device_certificates.push(pesos_crypto::hex_encode(
            &drive.device_certificate().fingerprint(),
        ));

        // Connect with the factory account and replace ALL accounts with the
        // single Pesos administrative identity.
        let factory =
            KineticClient::connect(Arc::clone(&drive), ClientConfig::factory_default())
                .map_err(|e| PesosError::Bootstrap(format!("cannot reach drive {id}: {e}")))?;
        let admin_secret = admin_secret_for(&secrets, id);
        factory
            .replace_accounts(vec![AccountSpec {
                identity: PESOS_ADMIN_IDENTITY,
                secret: admin_secret.clone(),
                permissions: Permission::all(),
            }])
            .map_err(|e| PesosError::Bootstrap(format!("takeover of {id} failed: {e}")))?;

        // Reconnect as the Pesos admin and bump the cluster version.
        let admin = KineticClient::connect(
            Arc::clone(&drive),
            ClientConfig::admin(PESOS_ADMIN_IDENTITY, admin_secret.clone(), 0),
        )
        .map_err(|e| PesosError::Bootstrap(format!("admin connect to {id} failed: {e}")))?;
        admin
            .setup(Some(PESOS_CLUSTER_VERSION), false)
            .map_err(|e| PesosError::Bootstrap(format!("setup of {id} failed: {e}")))?;
        drop(admin);
        let session = KineticClient::connect(
            Arc::clone(&drive),
            ClientConfig::admin(PESOS_ADMIN_IDENTITY, admin_secret, PESOS_CLUSTER_VERSION),
        )
        .map_err(|e| PesosError::Bootstrap(format!("session connect to {id} failed: {e}")))?;

        drives.add(Arc::clone(&drive));
        clients.push(Arc::new(session));
    }

    let report = BootstrapReport {
        measurement: enclave.measurement().to_hex(),
        drives: drive_ids,
        device_certificates,
        encryption_enabled: config.encrypt_objects,
    };

    Ok(BootstrapOutcome {
        enclave,
        asyscall,
        secrets,
        drives,
        clients,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_takes_exclusive_control() {
        let config = ControllerConfig::native_simulator(2);
        let outcome = bootstrap(&config).unwrap();
        assert_eq!(outcome.drives.len(), 2);
        assert_eq!(outcome.clients.len(), 2);
        assert_eq!(outcome.report.drives.len(), 2);
        assert_eq!(outcome.report.device_certificates.len(), 2);

        // The factory account no longer works on any drive.
        for drive in outcome.drives.iter() {
            assert!(
                KineticClient::connect(Arc::clone(drive), ClientConfig::factory_default()).is_err()
            );
        }
        // The admin sessions do.
        for client in &outcome.clients {
            client.noop().unwrap();
        }
    }

    #[test]
    fn bootstrap_rejects_invalid_config() {
        let mut config = ControllerConfig::native_simulator(1);
        config.replication_factor = 5;
        assert!(bootstrap(&config).is_err());
    }

    #[test]
    fn admin_secret_is_per_drive() {
        let secrets = ProvisionedSecrets {
            tls_key_seed: vec![],
            disk_credentials: vec![("kd-00".into(), vec![1, 2, 3])],
            storage_master_key: [0u8; 32],
        };
        assert_eq!(admin_secret_for(&secrets, "kd-00"), vec![1, 2, 3]);
        // Unknown drives get a derived (non-empty, distinct) secret.
        let a = admin_secret_for(&secrets, "kd-01");
        let b = admin_secret_for(&secrets, "kd-02");
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }
}
