//! The asynchronous-operation result buffer.
//!
//! Asynchronous put/update/delete requests are acknowledged immediately with
//! an operation identifier; once the backend write completes, its result is
//! stored here for the client to poll. Because enclave memory is scarce,
//! only the results of the most recent operations are retained (2048 by
//! default), and older ones are discarded (paper §4.1).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// The state of an asynchronous operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsyncResult {
    /// The operation has been accepted but not yet completed.
    Pending,
    /// The operation completed successfully; an optional version is carried
    /// for writes.
    Completed { version: Option<u64> },
    /// The operation failed.
    Failed { reason: String },
}

struct Inner {
    results: HashMap<u64, (String, AsyncResult)>,
    order: VecDeque<u64>,
    discarded: u64,
}

/// A bounded buffer of asynchronous operation results.
pub struct ResultBuffer {
    capacity: usize,
    next_id: AtomicU64,
    inner: Mutex<Inner>,
}

impl ResultBuffer {
    /// Creates a buffer retaining at most `capacity` results.
    pub fn new(capacity: usize) -> Self {
        ResultBuffer {
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
            inner: Mutex::with_rank(
                parking_lot::lock_order::RESULT_BUFFER,
                Inner {
                    results: HashMap::new(),
                    order: VecDeque::new(),
                    discarded: 0,
                },
            ),
        }
    }

    /// Registers a new pending operation owned by `client` and returns its
    /// operation identifier.
    pub fn register(&self, client: &str) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let mut inner = self.inner.lock();
        inner
            .results
            .insert(id, (client.to_string(), AsyncResult::Pending));
        inner.order.push_back(id);
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.results.remove(&old);
                inner.discarded += 1;
            }
        }
        id
    }

    /// Records the completion of operation `id`.
    pub fn complete(&self, id: u64, result: AsyncResult) {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.results.get_mut(&id) {
            entry.1 = result;
        }
        // If the entry was already discarded the result is dropped, exactly
        // as the paper describes for results older than the retention bound.
    }

    /// Polls the result of operation `id` for `client`.
    ///
    /// Returns `None` if the operation is unknown (never existed, discarded,
    /// or owned by a different client).
    pub fn poll(&self, client: &str, id: u64) -> Option<AsyncResult> {
        let inner = self.inner.lock();
        inner
            .results
            .get(&id)
            .filter(|(owner, _)| owner == client)
            .map(|(_, r)| r.clone())
    }

    /// Number of results currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().results.len()
    }

    /// True if no results are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of results discarded because of the retention bound.
    pub fn discarded(&self) -> u64 {
        self.inner.lock().discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_complete_poll_cycle() {
        let buf = ResultBuffer::new(16);
        let id = buf.register("alice");
        assert_eq!(buf.poll("alice", id), Some(AsyncResult::Pending));
        buf.complete(id, AsyncResult::Completed { version: Some(3) });
        assert_eq!(
            buf.poll("alice", id),
            Some(AsyncResult::Completed { version: Some(3) })
        );
    }

    #[test]
    fn results_are_scoped_to_the_owning_client() {
        let buf = ResultBuffer::new(16);
        let id = buf.register("alice");
        assert!(buf.poll("bob", id).is_none());
        assert!(buf.poll("alice", 999).is_none());
    }

    #[test]
    fn old_results_are_discarded_beyond_capacity() {
        let buf = ResultBuffer::new(4);
        let first = buf.register("c");
        for _ in 0..10 {
            buf.register("c");
        }
        assert_eq!(buf.len(), 4);
        assert!(buf.poll("c", first).is_none());
        assert_eq!(buf.discarded(), 7);
        // Completing a discarded operation is a no-op rather than an error.
        buf.complete(
            first,
            AsyncResult::Failed {
                reason: "late".into(),
            },
        );
        assert!(buf.poll("c", first).is_none());
    }

    #[test]
    fn failures_are_reported() {
        let buf = ResultBuffer::new(8);
        let id = buf.register("alice");
        buf.complete(
            id,
            AsyncResult::Failed {
                reason: "disk offline".into(),
            },
        );
        assert!(matches!(
            buf.poll("alice", id),
            Some(AsyncResult::Failed { .. })
        ));
        assert!(!buf.is_empty());
    }
}
