//! ACID multi-object transactions (VLL-variant lock manager).
//!
//! Pesos wraps atomic updates to multiple objects in transactions and uses a
//! modified VLL locking algorithm (paper §4.4): a transaction tries to lock
//! all of its keys before executing; if every lock is free it executes
//! immediately, otherwise it waits in a queue and VLL's ordering guarantees
//! that by the time it reaches the front all of its keys are unlocked.
//! Distributed transactions are explicitly out of scope, and
//! non-transactional accesses to the same keys are permitted (their outcome
//! relative to a concurrent transaction is unspecified, as in the paper).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};

use crate::error::PesosError;

/// A buffered transactional write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxWrite {
    /// Object key.
    pub key: String,
    /// New value.
    pub value: Vec<u8>,
    /// Policy to associate, encoded as the hex policy id.
    pub policy_id: Option<String>,
}

/// The outcome of a committed transaction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxOutcome {
    /// Versions assigned to each write, in the order the writes were added.
    pub write_versions: Vec<u64>,
    /// Values read, in the order the reads were added.
    pub read_values: Vec<Vec<u8>>,
}

#[derive(Debug, Default)]
struct Transaction {
    owner: String,
    reads: Vec<String>,
    writes: Vec<TxWrite>,
}

#[derive(Default)]
struct LockTable {
    /// Exclusive/shared lock counters per key (VLL keeps these in a small
    /// per-key structure rather than the database tuple itself).
    exclusive: HashMap<String, u64>,
    shared: HashMap<String, u64>,
    /// Queue of blocked transaction ids, oldest first.
    queue: VecDeque<u64>,
}

/// The transaction manager.
pub struct TransactionManager {
    next_id: AtomicU64,
    transactions: Mutex<HashMap<u64, Transaction>>,
    locks: Mutex<LockTable>,
    unblocked: Condvar,
}

impl Default for TransactionManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TransactionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        TransactionManager {
            next_id: AtomicU64::new(1),
            transactions: Mutex::with_rank(parking_lot::lock_order::TX_TABLE, HashMap::new()),
            locks: Mutex::with_rank(parking_lot::lock_order::TX_LOCKS, LockTable::default()),
            unblocked: Condvar::new(),
        }
    }

    /// Begins a transaction for `owner` and returns its handle.
    pub fn create(&self, owner: &str) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.transactions.lock().insert(
            id,
            Transaction {
                owner: owner.to_string(),
                ..Transaction::default()
            },
        );
        id
    }

    /// Number of open (not yet committed or aborted) transactions.
    pub fn open_count(&self) -> usize {
        self.transactions.lock().len()
    }

    fn with_tx<R>(
        &self,
        id: u64,
        owner: &str,
        f: impl FnOnce(&mut Transaction) -> R,
    ) -> Result<R, PesosError> {
        let mut txs = self.transactions.lock();
        let tx = txs
            .get_mut(&id)
            .ok_or_else(|| PesosError::TransactionAborted(format!("unknown transaction {id}")))?;
        if tx.owner != owner {
            return Err(PesosError::TransactionAborted(
                "transaction owned by a different client".into(),
            ));
        }
        Ok(f(tx))
    }

    /// Adds a read to the transaction.
    pub fn add_read(&self, id: u64, owner: &str, key: &str) -> Result<(), PesosError> {
        self.with_tx(id, owner, |tx| tx.reads.push(key.to_string()))
    }

    /// Adds a write to the transaction.
    pub fn add_write(&self, id: u64, owner: &str, write: TxWrite) -> Result<(), PesosError> {
        self.with_tx(id, owner, |tx| tx.writes.push(write))
    }

    /// Aborts and discards the transaction.
    pub fn abort(&self, id: u64, owner: &str) -> Result<(), PesosError> {
        let mut txs = self.transactions.lock();
        match txs.get(&id) {
            Some(tx) if tx.owner == owner => {
                txs.remove(&id);
                Ok(())
            }
            Some(_) => Err(PesosError::TransactionAborted(
                "transaction owned by a different client".into(),
            )),
            None => Err(PesosError::TransactionAborted(format!(
                "unknown transaction {id}"
            ))),
        }
    }

    /// Takes ownership of the transaction and acquires all of its locks
    /// (waiting VLL-style if any are busy), returning a guard that holds
    /// them until it is dropped.
    ///
    /// This is the first phase of a two-phase commit: a distributed
    /// coordinator prepares one branch per participant, and only when every
    /// branch is prepared (locks held, validation passed) are the writes
    /// applied. Dropping the guard releases the locks, so an abort after a
    /// failed sibling branch is just dropping the prepared guards.
    ///
    /// Deadlock discipline: a coordinator preparing branches on several
    /// managers must prepare them in one globally consistent order (the
    /// cluster layer uses ascending partition index); VLL's queue prevents
    /// cycles within one manager but not across managers.
    pub fn prepare(&self, id: u64, owner: &str) -> Result<PreparedTransaction<'_>, PesosError> {
        let tx = {
            let mut txs = self.transactions.lock();
            match txs.remove(&id) {
                Some(tx) if tx.owner == owner => tx,
                Some(tx) => {
                    // Wrong owner: put the transaction back untouched.
                    txs.insert(id, tx);
                    return Err(PesosError::TransactionAborted(
                        "transaction owned by a different client".into(),
                    ));
                }
                None => {
                    return Err(PesosError::TransactionAborted(format!(
                        "unknown transaction {id}"
                    )))
                }
            }
        };

        self.acquire_locks(id, &tx);
        Ok(PreparedTransaction {
            manager: self,
            tx: Some(tx),
        })
    }

    /// Commits the transaction: acquires all locks (waiting VLL-style if any
    /// are busy), runs `apply` with the buffered reads and writes, releases
    /// the locks and returns the outcome produced by `apply`.
    pub fn commit<F>(&self, id: u64, owner: &str, apply: F) -> Result<TxOutcome, PesosError>
    where
        F: FnOnce(&[String], &[TxWrite]) -> Result<TxOutcome, PesosError>,
    {
        let prepared = self.prepare(id, owner)?;
        apply(prepared.reads(), prepared.writes())
        // `prepared` drops here, releasing the locks.
    }

    fn keys_free(table: &LockTable, tx: &Transaction) -> bool {
        for key in &tx.writes {
            if table.exclusive.get(&key.key).copied().unwrap_or(0) > 0
                || table.shared.get(&key.key).copied().unwrap_or(0) > 0
            {
                return false;
            }
        }
        for key in &tx.reads {
            if table.exclusive.get(key).copied().unwrap_or(0) > 0 {
                return false;
            }
        }
        true
    }

    fn acquire_locks(&self, id: u64, tx: &Transaction) {
        let mut table = self.locks.lock();
        if Self::keys_free(&table, tx) && table.queue.is_empty() {
            Self::grab(&mut table, tx);
            return;
        }
        // Blocked: wait until we are at the front of the queue and our keys
        // are free (VLL guarantees this eventually holds).
        table.queue.push_back(id);
        loop {
            let at_front = table.queue.front() == Some(&id);
            if at_front && Self::keys_free(&table, tx) {
                table.queue.pop_front();
                Self::grab(&mut table, tx);
                return;
            }
            self.unblocked.wait(&mut table);
        }
    }

    fn grab(table: &mut LockTable, tx: &Transaction) {
        for w in &tx.writes {
            *table.exclusive.entry(w.key.clone()).or_insert(0) += 1;
        }
        for r in &tx.reads {
            *table.shared.entry(r.clone()).or_insert(0) += 1;
        }
    }

    fn release_locks(&self, tx: &Transaction) {
        let mut table = self.locks.lock();
        for w in &tx.writes {
            if let Some(c) = table.exclusive.get_mut(&w.key) {
                *c = c.saturating_sub(1);
            }
        }
        for r in &tx.reads {
            if let Some(c) = table.shared.get_mut(r) {
                *c = c.saturating_sub(1);
            }
        }
        self.unblocked.notify_all();
    }
}

/// A transaction whose locks are held (two-phase-commit "prepared" state).
///
/// Produced by [`TransactionManager::prepare`]; the locks are released when
/// the guard is dropped, whether the coordinator committed or aborted, so a
/// panic or early return cannot strand a VLL queue.
pub struct PreparedTransaction<'a> {
    manager: &'a TransactionManager,
    tx: Option<Transaction>,
}

impl PreparedTransaction<'_> {
    /// The buffered read keys, in the order they were added.
    ///
    /// `tx` is `None` only after `Drop` took it, which cannot overlap a
    /// live borrow; the empty fallback keeps the accessor panic-free.
    pub fn reads(&self) -> &[String] {
        match &self.tx {
            Some(tx) => &tx.reads,
            None => &[],
        }
    }

    /// The buffered writes, in the order they were added.
    pub fn writes(&self) -> &[TxWrite] {
        match &self.tx {
            Some(tx) => &tx.writes,
            None => &[],
        }
    }
}

impl Drop for PreparedTransaction<'_> {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            self.manager.release_locks(&tx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn create_add_commit_flow() {
        let mgr = TransactionManager::new();
        let id = mgr.create("alice");
        mgr.add_write(
            id,
            "alice",
            TxWrite {
                key: "a".into(),
                value: b"1".to_vec(),
                policy_id: None,
            },
        )
        .unwrap();
        mgr.add_read(id, "alice", "b").unwrap();
        let outcome = mgr
            .commit(id, "alice", |reads, writes| {
                assert_eq!(reads, &["b".to_string()]);
                assert_eq!(writes.len(), 1);
                Ok(TxOutcome {
                    write_versions: vec![0],
                    read_values: vec![b"existing".to_vec()],
                })
            })
            .unwrap();
        assert_eq!(outcome.write_versions, vec![0]);
        assert_eq!(mgr.open_count(), 0);
        // Committing twice fails.
        assert!(mgr
            .commit(id, "alice", |_, _| Ok(TxOutcome::default()))
            .is_err());
    }

    #[test]
    fn ownership_is_enforced() {
        let mgr = TransactionManager::new();
        let id = mgr.create("alice");
        assert!(mgr.add_read(id, "bob", "x").is_err());
        assert!(mgr.abort(id, "bob").is_err());
        assert!(mgr
            .commit(id, "bob", |_, _| Ok(TxOutcome::default()))
            .is_err());
        mgr.abort(id, "alice").unwrap();
        assert!(mgr.abort(id, "alice").is_err());
    }

    #[test]
    fn failed_apply_propagates_and_releases_locks() {
        let mgr = TransactionManager::new();
        let id = mgr.create("c");
        mgr.add_write(
            id,
            "c",
            TxWrite {
                key: "k".into(),
                value: vec![],
                policy_id: None,
            },
        )
        .unwrap();
        let err = mgr
            .commit(id, "c", |_, _| Err(PesosError::PolicyDenied("no".into())))
            .unwrap_err();
        assert!(matches!(err, PesosError::PolicyDenied(_)));
        // A later transaction on the same key is not blocked forever.
        let id2 = mgr.create("c");
        mgr.add_write(
            id2,
            "c",
            TxWrite {
                key: "k".into(),
                value: vec![],
                policy_id: None,
            },
        )
        .unwrap();
        mgr.commit(id2, "c", |_, _| Ok(TxOutcome::default()))
            .unwrap();
    }

    #[test]
    fn concurrent_transactions_serialize_on_conflicting_keys() {
        let mgr = Arc::new(TransactionManager::new());
        let counter = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..8 {
            let mgr = Arc::clone(&mgr);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let id = mgr.create("worker");
                mgr.add_write(
                    id,
                    "worker",
                    TxWrite {
                        key: "shared-counter".into(),
                        value: vec![t],
                        policy_id: None,
                    },
                )
                .unwrap();
                mgr.commit(id, "worker", |_, writes| {
                    // Critical section: no other transaction holding the key
                    // may interleave here.
                    let mut guard = counter.lock();
                    guard.push(writes[0].value[0]);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    Ok(TxOutcome::default())
                })
                .unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.lock().len(), 8);
    }

    #[test]
    fn prepared_transactions_hold_locks_until_dropped() {
        let mgr = Arc::new(TransactionManager::new());
        let a = mgr.create("c");
        mgr.add_write(
            a,
            "c",
            TxWrite {
                key: "contested".into(),
                value: vec![1],
                policy_id: None,
            },
        )
        .unwrap();
        let prepared = mgr.prepare(a, "c").unwrap();
        assert_eq!(prepared.writes().len(), 1);
        assert!(prepared.reads().is_empty());
        // A second transaction on the same key blocks until the prepared
        // guard is dropped (abort path: no apply ever ran).
        let b = mgr.create("c");
        mgr.add_write(
            b,
            "c",
            TxWrite {
                key: "contested".into(),
                value: vec![2],
                policy_id: None,
            },
        )
        .unwrap();
        let mgr2 = Arc::clone(&mgr);
        let handle =
            std::thread::spawn(move || mgr2.commit(b, "c", |_, _| Ok(TxOutcome::default())));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!handle.is_finished(), "locks released before drop");
        drop(prepared);
        handle.join().unwrap().unwrap();
        // Preparing an unknown or foreign transaction fails like commit.
        assert!(mgr.prepare(a, "c").is_err());
        let c = mgr.create("owner");
        assert!(mgr.prepare(c, "other").is_err());
    }

    #[test]
    fn disjoint_transactions_do_not_block_each_other() {
        let mgr = Arc::new(TransactionManager::new());
        let a = mgr.create("x");
        mgr.add_write(
            a,
            "x",
            TxWrite {
                key: "key-a".into(),
                value: vec![],
                policy_id: None,
            },
        )
        .unwrap();
        let b = mgr.create("x");
        mgr.add_write(
            b,
            "x",
            TxWrite {
                key: "key-b".into(),
                value: vec![],
                policy_id: None,
            },
        )
        .unwrap();
        // Commit b while a is still open: must not deadlock.
        mgr.commit(b, "x", |_, _| Ok(TxOutcome::default())).unwrap();
        mgr.commit(a, "x", |_, _| Ok(TxOutcome::default())).unwrap();
    }
}
