//! ACID multi-object transactions (VLL-variant lock manager).
//!
//! Pesos wraps atomic updates to multiple objects in transactions and uses a
//! modified VLL locking algorithm (paper §4.4): a transaction tries to lock
//! all of its keys before executing; if every lock is free it executes
//! immediately, otherwise it waits in a queue and VLL's ordering guarantees
//! that by the time it reaches the front all of its keys are unlocked.
//! Distributed transactions are explicitly out of scope, and
//! non-transactional accesses to the same keys are permitted (their outcome
//! relative to a concurrent transaction is unspecified, as in the paper).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};

use crate::error::PesosError;

/// A buffered transactional write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxWrite {
    /// Object key.
    pub key: String,
    /// New value.
    pub value: Vec<u8>,
    /// Policy to associate, encoded as the hex policy id.
    pub policy_id: Option<String>,
}

/// The outcome of a committed transaction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxOutcome {
    /// Versions assigned to each write, in the order the writes were added.
    pub write_versions: Vec<u64>,
    /// Values read, in the order the reads were added.
    pub read_values: Vec<Vec<u8>>,
}

#[derive(Debug, Default)]
struct Transaction {
    owner: String,
    reads: Vec<String>,
    writes: Vec<TxWrite>,
}

#[derive(Default)]
struct LockTable {
    /// Exclusive/shared lock counters per key (VLL keeps these in a small
    /// per-key structure rather than the database tuple itself).
    exclusive: HashMap<String, u64>,
    shared: HashMap<String, u64>,
    /// Queue of blocked transaction ids, oldest first.
    queue: VecDeque<u64>,
}

/// The transaction manager.
pub struct TransactionManager {
    next_id: AtomicU64,
    transactions: Mutex<HashMap<u64, Transaction>>,
    locks: Mutex<LockTable>,
    unblocked: Condvar,
}

impl Default for TransactionManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TransactionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        TransactionManager {
            next_id: AtomicU64::new(1),
            transactions: Mutex::new(HashMap::new()),
            locks: Mutex::new(LockTable::default()),
            unblocked: Condvar::new(),
        }
    }

    /// Begins a transaction for `owner` and returns its handle.
    pub fn create(&self, owner: &str) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.transactions.lock().insert(
            id,
            Transaction {
                owner: owner.to_string(),
                ..Transaction::default()
            },
        );
        id
    }

    /// Number of open (not yet committed or aborted) transactions.
    pub fn open_count(&self) -> usize {
        self.transactions.lock().len()
    }

    fn with_tx<R>(
        &self,
        id: u64,
        owner: &str,
        f: impl FnOnce(&mut Transaction) -> R,
    ) -> Result<R, PesosError> {
        let mut txs = self.transactions.lock();
        let tx = txs
            .get_mut(&id)
            .ok_or_else(|| PesosError::TransactionAborted(format!("unknown transaction {id}")))?;
        if tx.owner != owner {
            return Err(PesosError::TransactionAborted(
                "transaction owned by a different client".into(),
            ));
        }
        Ok(f(tx))
    }

    /// Adds a read to the transaction.
    pub fn add_read(&self, id: u64, owner: &str, key: &str) -> Result<(), PesosError> {
        self.with_tx(id, owner, |tx| tx.reads.push(key.to_string()))
    }

    /// Adds a write to the transaction.
    pub fn add_write(&self, id: u64, owner: &str, write: TxWrite) -> Result<(), PesosError> {
        self.with_tx(id, owner, |tx| tx.writes.push(write))
    }

    /// Aborts and discards the transaction.
    pub fn abort(&self, id: u64, owner: &str) -> Result<(), PesosError> {
        let mut txs = self.transactions.lock();
        match txs.get(&id) {
            Some(tx) if tx.owner == owner => {
                txs.remove(&id);
                Ok(())
            }
            Some(_) => Err(PesosError::TransactionAborted(
                "transaction owned by a different client".into(),
            )),
            None => Err(PesosError::TransactionAborted(format!(
                "unknown transaction {id}"
            ))),
        }
    }

    /// Commits the transaction: acquires all locks (waiting VLL-style if any
    /// are busy), runs `apply` with the buffered reads and writes, releases
    /// the locks and returns the outcome produced by `apply`.
    pub fn commit<F>(&self, id: u64, owner: &str, apply: F) -> Result<TxOutcome, PesosError>
    where
        F: FnOnce(&[String], &[TxWrite]) -> Result<TxOutcome, PesosError>,
    {
        let tx = {
            let mut txs = self.transactions.lock();
            let tx = txs.get(&id).ok_or_else(|| {
                PesosError::TransactionAborted(format!("unknown transaction {id}"))
            })?;
            if tx.owner != owner {
                return Err(PesosError::TransactionAborted(
                    "transaction owned by a different client".into(),
                ));
            }
            txs.remove(&id).expect("checked above")
        };

        self.acquire_locks(id, &tx);
        let result = apply(&tx.reads, &tx.writes);
        self.release_locks(&tx);
        result
    }

    fn keys_free(table: &LockTable, tx: &Transaction) -> bool {
        for key in &tx.writes {
            if table.exclusive.get(&key.key).copied().unwrap_or(0) > 0
                || table.shared.get(&key.key).copied().unwrap_or(0) > 0
            {
                return false;
            }
        }
        for key in &tx.reads {
            if table.exclusive.get(key).copied().unwrap_or(0) > 0 {
                return false;
            }
        }
        true
    }

    fn acquire_locks(&self, id: u64, tx: &Transaction) {
        let mut table = self.locks.lock();
        if Self::keys_free(&table, tx) && table.queue.is_empty() {
            Self::grab(&mut table, tx);
            return;
        }
        // Blocked: wait until we are at the front of the queue and our keys
        // are free (VLL guarantees this eventually holds).
        table.queue.push_back(id);
        loop {
            let at_front = table.queue.front() == Some(&id);
            if at_front && Self::keys_free(&table, tx) {
                table.queue.pop_front();
                Self::grab(&mut table, tx);
                return;
            }
            self.unblocked.wait(&mut table);
        }
    }

    fn grab(table: &mut LockTable, tx: &Transaction) {
        for w in &tx.writes {
            *table.exclusive.entry(w.key.clone()).or_insert(0) += 1;
        }
        for r in &tx.reads {
            *table.shared.entry(r.clone()).or_insert(0) += 1;
        }
    }

    fn release_locks(&self, tx: &Transaction) {
        let mut table = self.locks.lock();
        for w in &tx.writes {
            if let Some(c) = table.exclusive.get_mut(&w.key) {
                *c = c.saturating_sub(1);
            }
        }
        for r in &tx.reads {
            if let Some(c) = table.shared.get_mut(r) {
                *c = c.saturating_sub(1);
            }
        }
        self.unblocked.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn create_add_commit_flow() {
        let mgr = TransactionManager::new();
        let id = mgr.create("alice");
        mgr.add_write(
            id,
            "alice",
            TxWrite {
                key: "a".into(),
                value: b"1".to_vec(),
                policy_id: None,
            },
        )
        .unwrap();
        mgr.add_read(id, "alice", "b").unwrap();
        let outcome = mgr
            .commit(id, "alice", |reads, writes| {
                assert_eq!(reads, &["b".to_string()]);
                assert_eq!(writes.len(), 1);
                Ok(TxOutcome {
                    write_versions: vec![0],
                    read_values: vec![b"existing".to_vec()],
                })
            })
            .unwrap();
        assert_eq!(outcome.write_versions, vec![0]);
        assert_eq!(mgr.open_count(), 0);
        // Committing twice fails.
        assert!(mgr
            .commit(id, "alice", |_, _| Ok(TxOutcome::default()))
            .is_err());
    }

    #[test]
    fn ownership_is_enforced() {
        let mgr = TransactionManager::new();
        let id = mgr.create("alice");
        assert!(mgr.add_read(id, "bob", "x").is_err());
        assert!(mgr.abort(id, "bob").is_err());
        assert!(mgr
            .commit(id, "bob", |_, _| Ok(TxOutcome::default()))
            .is_err());
        mgr.abort(id, "alice").unwrap();
        assert!(mgr.abort(id, "alice").is_err());
    }

    #[test]
    fn failed_apply_propagates_and_releases_locks() {
        let mgr = TransactionManager::new();
        let id = mgr.create("c");
        mgr.add_write(
            id,
            "c",
            TxWrite {
                key: "k".into(),
                value: vec![],
                policy_id: None,
            },
        )
        .unwrap();
        let err = mgr
            .commit(id, "c", |_, _| Err(PesosError::PolicyDenied("no".into())))
            .unwrap_err();
        assert!(matches!(err, PesosError::PolicyDenied(_)));
        // A later transaction on the same key is not blocked forever.
        let id2 = mgr.create("c");
        mgr.add_write(
            id2,
            "c",
            TxWrite {
                key: "k".into(),
                value: vec![],
                policy_id: None,
            },
        )
        .unwrap();
        mgr.commit(id2, "c", |_, _| Ok(TxOutcome::default()))
            .unwrap();
    }

    #[test]
    fn concurrent_transactions_serialize_on_conflicting_keys() {
        let mgr = Arc::new(TransactionManager::new());
        let counter = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 0..8 {
            let mgr = Arc::clone(&mgr);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let id = mgr.create("worker");
                mgr.add_write(
                    id,
                    "worker",
                    TxWrite {
                        key: "shared-counter".into(),
                        value: vec![t],
                        policy_id: None,
                    },
                )
                .unwrap();
                mgr.commit(id, "worker", |_, writes| {
                    // Critical section: no other transaction holding the key
                    // may interleave here.
                    let mut guard = counter.lock();
                    guard.push(writes[0].value[0]);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    Ok(TxOutcome::default())
                })
                .unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.lock().len(), 8);
    }

    #[test]
    fn disjoint_transactions_do_not_block_each_other() {
        let mgr = Arc::new(TransactionManager::new());
        let a = mgr.create("x");
        mgr.add_write(
            a,
            "x",
            TxWrite {
                key: "key-a".into(),
                value: vec![],
                policy_id: None,
            },
        )
        .unwrap();
        let b = mgr.create("x");
        mgr.add_write(
            b,
            "x",
            TxWrite {
                key: "key-b".into(),
                value: vec![],
                policy_id: None,
            },
        )
        .unwrap();
        // Commit b while a is still open: must not deadlock.
        mgr.commit(b, "x", |_, _| Ok(TxOutcome::default())).unwrap();
        mgr.commit(a, "x", |_, _| Ok(TxOutcome::default())).unwrap();
    }
}
