//! Compression-count budgets for the request hot path.
//!
//! The `count-ops` feature of `pesos-crypto` (enabled for test builds only)
//! counts every SHA-256 compression executed in the process. These tests pin
//! the number of compressions the put/get/exchange paths are allowed to
//! spend, so digest-count regressions — hashing the same payload twice,
//! recomputing a key hash per structure, redoing an HMAC key schedule per
//! MAC — fail loudly instead of silently costing microseconds per request.
//!
//! Baselines were measured on the pre-overhaul tree (commit `355f48f`) with
//! the same counter patched in; the budgets below are the post-overhaul
//! measurements plus ~10 % slack. Measured:
//!
//! | operation              | before | after | reduction |
//! |------------------------|-------:|------:|----------:|
//! | put (1-block value)    |    108 |    41 |     2.6×  |
//! | get (object-cache hit) |      2 |     1 |     2.0×  |
//! | put (64 KiB value)     |   7275 |  6184 | 1091 (the duplicate content hash) |
//! | kinetic PUT exchange   |     16 |     8 |     2.0×  |

use std::sync::Mutex;

use pesos_core::{ControllerConfig, PesosController};
use pesos_crypto::sha256::ops;

/// The counter is process-wide, so measurements must not interleave.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

fn measured<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ops::compressions();
    let out = f();
    (out, ops::compressions() - before)
}

fn controller() -> PesosController {
    // One drive, no replication: every count below is deterministic.
    PesosController::new(ControllerConfig::native_simulator(1)).unwrap()
}

#[test]
fn put_and_get_compression_budgets() {
    let _serial = MEASURE_LOCK.lock().unwrap();
    let c = controller();
    let client = c.register_client("budget");

    // Warm the session/metadata paths so the measured op is the steady
    // state, not the cold bootstrap.
    c.put(&client, "warm", b"w".to_vec(), None, None, &[])
        .unwrap();
    let _ = c.get(&client, "warm", &[]).unwrap();

    // -- put of a small (one-block) value ------------------------------
    // Pre-overhaul baseline: 108 compressions (key hash recomputed by
    // every structure, payload hashed twice, metadata re-read per policy
    // check, HMAC key schedule redone on all twelve exchange MACs);
    // measured now: 41. The budget of 54 is half the baseline, so the ≥2×
    // acceptance bound is pinned by CI.
    let (version, small_put) = measured(|| {
        c.put(&client, "obj/small", b"v".to_vec(), None, None, &[])
            .unwrap()
    });
    assert_eq!(version, 0);
    println!("put(1-block value): {small_put} compressions");
    assert!(
        small_put <= 54,
        "small put spent {small_put} compressions (budget 54 = half the \
         pre-overhaul 108; measured 41)"
    );

    // -- cached get ----------------------------------------------------
    // Pre-overhaul baseline: 2 (placement hash recomputed by the session
    // check and the cache shard); now exactly 1: the single key hash the
    // request fundamentally needs.
    let (_, cached_get) = measured(|| c.get(&client, "obj/small", &[]).unwrap());
    println!("get(object-cache hit): {cached_get} compressions");
    assert!(
        cached_get <= 1,
        "cached get spent {cached_get} compressions (budget 1; pre-overhaul 2)"
    );

    // -- put of a large value: the content must be hashed exactly once --
    // A 64 KiB value costs 1024 compressions per full hash pass. The
    // payload fundamentally crosses the digest pipeline six times: one
    // content hash (controller, shared with the store), two keystream
    // passes (32-byte blocks at one compression each), the AEAD MAC, and
    // the envelope HMAC on each side of the drive exchange. The
    // pre-overhaul path added a seventh pass — the store re-hashing the
    // payload for the version metadata — measured at 7275 total vs 6184
    // now. Anything past ~6.2 passes means a duplicate digest came back.
    let value = vec![7u8; 64 * 1024];
    let passes = |count: u64| count as f64 / 1024.0;
    let (_, large_put) = measured(|| {
        c.put(&client, "obj/large", value.clone(), None, None, &[])
            .unwrap()
    });
    println!(
        "put(64 KiB value): {large_put} compressions ({:.2} hash passes over the payload)",
        passes(large_put)
    );
    assert!(
        passes(large_put) < 6.5,
        "64 KiB put spent {:.2} payload passes — the content digest is being \
         recomputed (budget < 6.5 passes; measured 6.04, pre-overhaul 7.10)",
        passes(large_put)
    );
}

#[test]
fn exchange_compression_budget() {
    let _serial = MEASURE_LOCK.lock().unwrap();
    use pesos_kinetic::{ClientConfig, DriveConfig, KineticClient, KineticDrive};
    use std::sync::Arc;

    let drive = Arc::new(KineticDrive::new(DriveConfig::simulator("kd-budget")));
    let client =
        KineticClient::connect(Arc::clone(&drive), ClientConfig::factory_default()).unwrap();

    // Warm up.
    client.noop().unwrap();

    // One PUT exchange carries four HMACs (client seal, drive verify,
    // drive seal, client verify). Pre-overhaul baseline: 16 compressions
    // with the per-MAC key schedule; now 8–10 with the cached ipad/opad
    // midstates — one inner and one outer compression per MAC, plus up to
    // one extra on each request MAC when the session's random
    // connection_id encodes as a 10-byte varint and pushes the command
    // across a 64-byte block boundary. The budget of 12 covers that
    // variance; a key-schedule regression costs +2 per MAC (≥16) and still
    // fails.
    let (_, exchange) = measured(|| {
        client
            .put(b"budget-key", b"budget-value".to_vec(), b"", b"1", false)
            .unwrap()
    });
    println!("kinetic PUT exchange: {exchange} compressions");
    assert!(
        exchange <= 12,
        "drive exchange spent {exchange} compressions (budget 12; measured 8-10 \
         depending on connection_id varint length, pre-overhaul 16)"
    );
}
