//! Compression-count budgets for the request hot path.
//!
//! The always-on `pesos_crypto::sha256::ops` counter tallies every SHA-256
//! compression executed in the process. These tests pin
//! the number of compressions the put/get/exchange paths are allowed to
//! spend, so digest-count regressions — hashing the same payload twice,
//! recomputing a key hash per structure, redoing an HMAC key schedule per
//! MAC — fail loudly instead of silently costing microseconds per request.
//!
//! Baselines were measured on the pre-overhaul tree (commit `355f48f`) with
//! the same counter patched in; the budgets below are the current
//! measurements plus ~10–25 % slack. The "PR 2" column is the digest-
//! pipeline overhaul (cached HMAC/keystream midstates), the "now" column
//! adds the vectored wire frames with folded frame HMACs (the verify side
//! of every drive exchange became one outer compression instead of a full
//! re-hash — the frame is hashed once, at seal time). Measured:
//!
//! | operation              | before | PR 2 |  now | reduction |
//! |------------------------|-------:|-----:|-----:|----------:|
//! | put (1-block value)    |    108 |   41 |   31 |     3.5×  |
//! | get (object-cache hit) |      2 |    1 |    1 |     2.0×  |
//! | put (64 KiB value)     |   7275 | 6184 | 5150 | 6.04 → 5.03 payload passes |
//! | kinetic PUT exchange   |     16 |    8 |    7 |     2.3×  |

use std::sync::Mutex;

use pesos_core::{ControllerConfig, PesosController};
use pesos_crypto::sha256::ops;

/// The counter is process-wide, so measurements must not interleave.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

fn measured<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ops::compressions();
    let out = f();
    (out, ops::compressions() - before)
}

fn controller() -> PesosController {
    // One drive, no replication: every count below is deterministic.
    PesosController::new(ControllerConfig::native_simulator(1)).unwrap()
}

#[test]
fn put_and_get_compression_budgets() {
    let _serial = MEASURE_LOCK.lock().unwrap();
    let c = controller();
    let client = c.register_client("budget");

    // Warm the session/metadata paths so the measured op is the steady
    // state, not the cold bootstrap.
    c.put(&client, "warm", b"w".to_vec(), None, None, &[])
        .unwrap();
    let _ = c.get(&client, "warm", &[]).unwrap();

    // -- put of a small (one-block) value ------------------------------
    // Pre-overhaul baseline: 108 compressions (key hash recomputed by
    // every structure, payload hashed twice, metadata re-read per policy
    // check, HMAC key schedule redone on all twelve exchange MACs); 41
    // after the PR 2 midstate caches; 31 with the folded frame HMACs
    // (every exchange's verify side is one outer compression). The budget
    // of 40 sits below the PR 2 number, so both overhauls stay pinned.
    let (version, small_put) = measured(|| {
        c.put(&client, "obj/small", b"v".to_vec(), None, None, &[])
            .unwrap()
    });
    assert_eq!(version, 0);
    println!("put(1-block value): {small_put} compressions");
    assert!(
        small_put <= 40,
        "small put spent {small_put} compressions (budget 40; measured 31, \
         41 before the folded frame HMACs, 108 pre-overhaul)"
    );

    // -- cached get ----------------------------------------------------
    // Pre-overhaul baseline: 2 (placement hash recomputed by the session
    // check and the cache shard); now exactly 1: the single key hash the
    // request fundamentally needs.
    let (_, cached_get) = measured(|| c.get(&client, "obj/small", &[]).unwrap());
    println!("get(object-cache hit): {cached_get} compressions");
    assert!(
        cached_get <= 1,
        "cached get spent {cached_get} compressions (budget 1; pre-overhaul 2)"
    );

    // -- put of a large value: every pass over the payload is accounted --
    // A 64 KiB value costs 1024 compressions per full hash pass. The
    // payload crosses the digest pipeline five times now: one content hash
    // (controller, shared with the store), two keystream passes (32-byte
    // blocks at one compression each), the AEAD MAC, and the single
    // streaming frame-HMAC pass of the vectored seal — the drive's verify
    // re-hash folded into one outer compression, which took the measured
    // count from 6184 (6.04 passes) to 5150 (5.03). The floor with the
    // seal pass kept is 5.005 passes (content + 2× keystream + AEAD MAC +
    // seal); anything past ~5.2 means a full verify pass or a duplicate
    // digest came back.
    let value = vec![7u8; 64 * 1024];
    let passes = |count: u64| count as f64 / 1024.0;
    let (_, large_put) = measured(|| {
        c.put(&client, "obj/large", value.clone(), None, None, &[])
            .unwrap()
    });
    println!(
        "put(64 KiB value): {large_put} compressions ({:.2} hash passes over the payload)",
        passes(large_put)
    );
    assert!(
        passes(large_put) < 5.2,
        "64 KiB put spent {:.2} payload passes — a verify-side re-hash or \
         duplicate digest came back (budget < 5.2 passes; measured 5.03, \
         6.04 before the folded frame HMACs, 7.10 pre-overhaul)",
        passes(large_put)
    );
}

#[test]
fn rebalance_drain_compression_budget() {
    let _serial = MEASURE_LOCK.lock().unwrap();
    use pesos_cluster::{ClusterConfig, ControllerCluster};

    // Two partitions, serial drain (drain_concurrency = 1) so the count is
    // deterministic; removing partition 1 drains every one of its resident
    // keys through export → import → delete.
    let mut config = ClusterConfig::native_simulator(2, 1);
    config.drain_concurrency = 1;
    let cluster = ControllerCluster::new(config).unwrap();
    cluster.register_client("budget");
    const KEYS: usize = 48;
    for i in 0..KEYS {
        // A mix of plain and suffixed keys, so the budget also covers the
        // routing-prefix hash suffixed keys pay during the range check.
        let key = if i % 3 == 0 {
            format!("drain/k{i}.log")
        } else {
            format!("drain/k{i}")
        };
        cluster
            .put("budget", &key, b"v".to_vec(), None, None, &[])
            .unwrap();
    }
    let moved = cluster.partition_loads()[1].resident_objects;
    assert!(moved > 0, "no keys landed on the drained partition");

    let (_, drained) = measured(|| cluster.remove_controller(1).unwrap());
    let per_key = drained as f64 / moved as f64;
    println!(
        "rebalance drain: {drained} compressions for {moved} moved keys \
         ({per_key:.1}/key)"
    );
    // Measured ~50/key: the object move itself (export's raced
    // metadata+data reads and unseal, import's re-seal and replicated
    // puts of data and metadata, the source-side delete — each drive
    // exchange at the pinned ≤ 7 compressions) plus, amortized, the one
    // key hash per listed key (the routing-prefix digest rides along only
    // for suffixed keys), the listing pages and the weighted-load
    // accounting. Re-hashing keys per structure or re-verifying frames
    // during the drain blows well past the budget.
    assert!(
        per_key <= 65.0,
        "drain spent {per_key:.1} compressions per moved key \
         (budget 65; measured ~50) — a per-key re-hash or a full \
         frame-verify pass crept into the migration path"
    );
}

#[test]
fn exchange_compression_budget() {
    let _serial = MEASURE_LOCK.lock().unwrap();
    use pesos_kinetic::{ClientConfig, DriveConfig, KineticClient, KineticDrive};
    use std::sync::Arc;

    let drive = Arc::new(KineticDrive::new(DriveConfig::simulator("kd-budget")));
    let client =
        KineticClient::connect(Arc::clone(&drive), ClientConfig::factory_default()).unwrap();

    // Warm up.
    client.noop().unwrap();

    // One PUT exchange carries four MACs (client seal, drive verify,
    // drive seal, client verify). Pre-overhaul baseline: 16 compressions
    // with the per-MAC key schedule; 8–10 after the PR 2 cached ipad/opad
    // midstates; 7 with the folded frame HMACs — the request costs one
    // streaming seal (inner ≈ 2 + outer 1) plus a single verify-side outer
    // compression on the drive, and the response one seal (1 + 1) plus one
    // outer compression at the client. A full verify-side re-hash costs
    // +1 per direction minimum (more with a longer command) and fails the
    // budget of 7.
    let (_, exchange) = measured(|| {
        client
            .put(b"budget-key", b"budget-value".to_vec(), b"", b"1", false)
            .unwrap()
    });
    println!("kinetic PUT exchange: {exchange} compressions");
    assert!(
        exchange <= 7,
        "drive exchange spent {exchange} compressions (budget 7; measured 7, \
         8-10 before the folded frame HMACs, pre-overhaul 16)"
    );
}
