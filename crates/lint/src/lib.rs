//! `pesos-lint`: hand-rolled static-analysis passes for the Pesos workspace.
//!
//! The compiler cannot see the invariants Pesos' concurrency and security
//! arguments rest on, so this crate checks them lexically — a small
//! hand-written Rust lexer (the build environment has no registry, so no
//! `syn`) plus per-function token analyzers. Four passes:
//!
//! 1. **lock-hierarchy** (`lock_hierarchy`) — the workspace declares one
//!    global lock-acquisition order in [`parking_lot::lock_order`] (the
//!    same rank table the shim's opt-in runtime checker enforces). This
//!    pass maps known lock-field names to ranks and flags any lexically
//!    nested `.lock()`/`.read()`/`.write()` whose rank is not strictly
//!    above every guard still live, or that takes two locks of one
//!    sharded family without ordered indices.
//! 2. **guard-across-I/O** (`guard_across_io`) — no lock guard may be
//!    lexically live across a drive-I/O submission
//!    (`submit`/`submit_async`/`submit_batch`/… or a drive
//!    `exchange`/`handle_envelope`): the submission parks the thread on a
//!    completion, so a held guard turns drive latency into lock hold
//!    time (or a deadlock when the service path needs the same lock).
//! 3. **panic-freedom** (`panic_freedom`) — request-path crates must
//!    return typed `PesosError`s, not panic inside the (logical)
//!    enclave: `unwrap()`, `expect(…)`, `panic!` and slice-indexing are
//!    flagged outside `#[cfg(test)]` code.
//! 4. **acked ⇒ logged** (`acked_logged`) — a mutation handler marked
//!    with `// pesos-lint: invariant(acked_logged)` must lexically
//!    append a replication-log record before every `Ok(...)` it can
//!    return: an acknowledgement that escapes without a log append is a
//!    lost write after failover.
//!
//! # Suppressions
//!
//! A finding is suppressed only by an allow comment **with a written
//! reason** (see [`parse_directive`] for the grammar):
//!
//! ```text
//! // pesos-lint: allow(<pass>, "<reason>")
//! ```
//!
//! placed either at the end of the offending line or alone on the line
//! directly above it. An allow with an empty or missing reason, or an
//! unknown pass slug, is itself reported (`bad_allow`) — the suppression
//! mechanism cannot be used silently.
//!
//! # The lock-rank table
//!
//! Ranks live in `parking_lot::lock_order` (ascending = outermost to
//! innermost): cluster topology → ops gate → routing state → cluster
//! registries → migration stripes/state → key registry/key locks → the
//! sharded metadata/cache/session maps → transaction tables → the
//! replication log → scheduler/asyscall internals → shield → drive
//! internals → backend actuator. The lexical pass recognises receivers
//! by field name (a curated table below, path-scoped where a name such
//! as `shards` or `inner` is reused across files); an unrecognised
//! receiver is unchecked here but still witnessed by the runtime
//! checker when the `lock_order` feature is on.

use std::collections::HashMap;
use std::fmt;

use parking_lot::lock_order as ranks;

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// Which analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    LockHierarchy,
    GuardAcrossIo,
    PanicFreedom,
    AckedLogged,
    /// A malformed suppression comment (empty reason, unknown pass).
    BadAllow,
}

impl Pass {
    /// The slug used in `pesos-lint: allow(<slug>, "...")` comments.
    pub fn slug(self) -> &'static str {
        match self {
            Pass::LockHierarchy => "lock_hierarchy",
            Pass::GuardAcrossIo => "guard_across_io",
            Pass::PanicFreedom => "panic_freedom",
            Pass::AckedLogged => "acked_logged",
            Pass::BadAllow => "bad_allow",
        }
    }

    fn from_slug(slug: &str) -> Option<Pass> {
        Some(match slug {
            "lock_hierarchy" => Pass::LockHierarchy,
            "guard_across_io" => Pass::GuardAcrossIo,
            "panic_freedom" => Pass::PanicFreedom,
            "acked_logged" => Pass::AckedLogged,
            _ => return None,
        })
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub pass: Pass,
    /// Path as given to [`lint_source`].
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

/// Per-file analysis switches.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    pub lock_hierarchy: bool,
    pub guard_across_io: bool,
    /// Only request-path crates enforce panic-freedom.
    pub panic_freedom: bool,
    pub acked_logged: bool,
}

impl Options {
    pub fn all() -> Options {
        Options {
            lock_hierarchy: true,
            guard_across_io: true,
            panic_freedom: true,
            acked_logged: true,
        }
    }

    pub fn without_panic_freedom() -> Options {
        Options {
            panic_freedom: false,
            ..Options::all()
        }
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Ident,
    Number,
    Str,
    CharLit,
    Lifetime,
    Punct,
    Comment,
}

#[derive(Debug, Clone)]
struct Token {
    kind: Kind,
    text: String,
    line: u32,
}

/// Tokenises Rust source. Comments are retained (the directives live in
/// them); string/char/raw-string/byte-string contents are opaque single
/// tokens so nothing inside them can pattern-match; `'a` lifetimes are
/// distinguished from `'a'` char literals; block comments nest.
fn lex(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let count_lines = |s: &[u8]| s.iter().filter(|&&b| b == b'\n').count() as u32;

    while i < n {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let start = i;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: Kind::Comment,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: Kind::Comment,
                    text: source[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let start = i;
                let start_line = line;
                i += 1;
                while i < n {
                    match bytes[i] {
                        b'\\' => {
                            // A `\` line-continuation escapes the newline;
                            // it still has to be counted.
                            if i + 1 < n && bytes[i + 1] == b'\n' {
                                line += 1;
                            }
                            i += 2;
                        }
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                tokens.push(Token {
                    kind: Kind::Str,
                    text: source[start..i.min(n)].to_string(),
                    line: start_line,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                let start = i;
                let start_line = line;
                // Skip the prefix letters.
                while i < n && (bytes[i] == b'r' || bytes[i] == b'b') {
                    i += 1;
                }
                if i < n && bytes[i] == b'\'' {
                    // Byte char literal b'x'.
                    i += 1;
                    if i < n && bytes[i] == b'\\' {
                        i += 1;
                    }
                    while i < n && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    tokens.push(Token {
                        kind: Kind::CharLit,
                        text: source[start..i.min(n)].to_string(),
                        line: start_line,
                    });
                } else {
                    let mut hashes = 0usize;
                    while i < n && bytes[i] == b'#' {
                        hashes += 1;
                        i += 1;
                    }
                    debug_assert!(i < n && bytes[i] == b'"');
                    i += 1; // opening quote
                    let raw = hashes > 0 || source[start..i].contains('r');
                    loop {
                        if i >= n {
                            break;
                        }
                        // Escaped newlines need no counting here: this
                        // branch tallies every newline post-hoc via
                        // `count_lines` over the whole literal.
                        if !raw && bytes[i] == b'\\' {
                            i += 2;
                            continue;
                        }
                        if bytes[i] == b'"' {
                            let mut j = i + 1;
                            let mut seen = 0usize;
                            while j < n && bytes[j] == b'#' && seen < hashes {
                                seen += 1;
                                j += 1;
                            }
                            if seen == hashes {
                                i = j;
                                break;
                            }
                        }
                        i += 1;
                    }
                    let text = &source[start..i.min(n)];
                    line += count_lines(text.as_bytes());
                    tokens.push(Token {
                        kind: Kind::Str,
                        text: text.to_string(),
                        line: start_line,
                    });
                }
            }
            b'\'' => {
                // Lifetime ('a) or char literal ('a', '\n', '\'').
                let start = i;
                if i + 1 < n
                    && (bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_')
                    && !(i + 2 < n && bytes[i + 2] == b'\'')
                {
                    i += 1;
                    while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: Kind::Lifetime,
                        text: source[start..i].to_string(),
                        line,
                    });
                } else {
                    i += 1;
                    if i < n && bytes[i] == b'\\' {
                        i += 2;
                        while i < n && bytes[i] != b'\'' {
                            i += 1;
                        }
                    } else {
                        while i < n && bytes[i] != b'\'' {
                            if bytes[i] == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                    i += 1;
                    tokens.push(Token {
                        kind: Kind::CharLit,
                        text: source[start..i.min(n)].to_string(),
                        line,
                    });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < n
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || (bytes[i] == b'.'
                            && i + 1 < n
                            && bytes[i + 1].is_ascii_digit()
                            && !source[start..i].contains('.')))
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: Kind::Number,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: Kind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                // Compound punctuation the passes care about; everything
                // else is a single-character punct.
                let two = if i + 1 < n { &source[i..i + 2] } else { "" };
                let text = match two {
                    "=>" | "->" | "::" | ".." => {
                        i += 2;
                        two.to_string()
                    }
                    _ => {
                        i += 1;
                        source[i - 1..i].to_string()
                    }
                };
                tokens.push(Token {
                    kind: Kind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    tokens
}

fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // r"...", r#"..."#, b"...", br"...", rb-prefixes, b'x'
    let n = bytes.len();
    let mut j = i;
    while j < n && (bytes[j] == b'r' || bytes[j] == b'b') && j - i < 2 {
        j += 1;
    }
    if j == i || j >= n {
        return false;
    }
    bytes[j] == b'"' || bytes[j] == b'#' || (bytes[i] == b'b' && bytes[j] == b'\'')
}

// ---------------------------------------------------------------------------
// Directives (allow / invariant comments)
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Directive {
    Allow { pass: String, reason: String },
    Invariant { name: String },
}

/// Parses a `pesos-lint:` directive out of a comment, if present.
///
/// Grammar (whitespace-tolerant):
///
/// ```text
/// directive  := "pesos-lint:" ( allow | invariant )
/// allow      := "allow(" slug "," '"' reason '"' ")"
/// invariant  := "invariant(" name ")"
/// slug       := lock_hierarchy | guard_across_io | panic_freedom | acked_logged
/// ```
fn parse_directive(comment: &str) -> Option<Directive> {
    let idx = comment.find("pesos-lint:")?;
    let rest = comment[idx + "pesos-lint:".len()..].trim_start();
    if let Some(args) = rest.strip_prefix("allow") {
        let args = args.trim_start();
        let inner = args.strip_prefix('(')?;
        let close = inner.rfind(')')?;
        let inner = &inner[..close];
        let (slug, reason) = match inner.find(',') {
            Some(comma) => (inner[..comma].trim(), inner[comma + 1..].trim()),
            None => (inner.trim(), ""),
        };
        let reason = reason
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .unwrap_or("")
            .trim();
        return Some(Directive::Allow {
            pass: slug.to_string(),
            reason: reason.to_string(),
        });
    }
    if let Some(args) = rest.strip_prefix("invariant") {
        let inner = args.trim_start().strip_prefix('(')?;
        // `find`, not `rfind`: invariant names carry no parentheses, and
        // trailing comment text after the directive may contain some.
        let close = inner.find(')')?;
        return Some(Directive::Invariant {
            name: inner[..close].trim().to_string(),
        });
    }
    None
}

// ---------------------------------------------------------------------------
// The lock-family table
// ---------------------------------------------------------------------------

/// Whether a family is sharded (same-rank nesting legal only with ordered
/// indices, which a lexical pass cannot prove — so same-family nesting is
/// always reported and must be allow-annotated where the indices are
/// provably ordered).
#[derive(Debug, Clone, Copy)]
struct Family {
    rank: u16,
    name: &'static str,
    sharded: bool,
}

/// Receiver field names that unambiguously identify a lock family in any
/// file.
const GLOBAL_FAMILIES: &[(&str, Family)] = &[
    (
        "rebalance",
        Family {
            rank: ranks::CLUSTER_TOPOLOGY,
            name: "CLUSTER_TOPOLOGY",
            sharded: false,
        },
    ),
    (
        "ops_gate",
        Family {
            rank: ranks::OPS_GATE,
            name: "OPS_GATE",
            sharded: false,
        },
    ),
    (
        "routing",
        Family {
            rank: ranks::ROUTING_STATE,
            name: "ROUTING_STATE",
            sharded: false,
        },
    ),
    (
        "replicas",
        Family {
            rank: ranks::REPLICA_REGISTRY,
            name: "REPLICA_REGISTRY",
            sharded: false,
        },
    ),
    (
        "retry_rng",
        Family {
            rank: ranks::RETRY_RNG,
            name: "RETRY_RNG",
            sharded: false,
        },
    ),
    (
        "request_baseline",
        Family {
            rank: ranks::REQUEST_BASELINE,
            name: "REQUEST_BASELINE",
            sharded: false,
        },
    ),
    (
        "migration_locks",
        Family {
            rank: ranks::MIGRATION_STRIPE,
            name: "MIGRATION_STRIPE",
            sharded: true,
        },
    ),
    (
        "moved_pending_delete",
        Family {
            rank: ranks::MIGRATION_STATE,
            name: "MIGRATION_STATE",
            sharded: false,
        },
    ),
    (
        "settled_groups",
        Family {
            rank: ranks::MIGRATION_STATE,
            name: "MIGRATION_STATE",
            sharded: false,
        },
    ),
    (
        "idle_lock",
        Family {
            rank: ranks::SCHEDULER,
            name: "SCHEDULER",
            sharded: false,
        },
    ),
    (
        "engine",
        Family {
            rank: ranks::DRIVE_ENGINE,
            name: "DRIVE_ENGINE",
            sharded: false,
        },
    ),
    (
        "security",
        Family {
            rank: ranks::DRIVE_SECURITY,
            name: "DRIVE_SECURITY",
            sharded: false,
        },
    ),
    (
        "cluster_version",
        Family {
            rank: ranks::DRIVE_CLUSTER_VERSION,
            name: "DRIVE_CLUSTER_VERSION",
            sharded: false,
        },
    ),
    (
        "online",
        Family {
            rank: ranks::DRIVE_ONLINE,
            name: "DRIVE_ONLINE",
            sharded: false,
        },
    ),
    (
        "actuator",
        Family {
            rank: ranks::BACKEND_ACTUATOR,
            name: "BACKEND_ACTUATOR",
            sharded: false,
        },
    ),
    (
        "injected",
        Family {
            rank: ranks::FAULT_COUNTERS,
            name: "FAULT_COUNTERS",
            sharded: false,
        },
    ),
];

/// Receiver field names that identify a family only inside a given file
/// (matched by path suffix), because the name is reused across files.
const SCOPED_FAMILIES: &[(&str, &str, Family)] = &[
    (
        "cluster/src/cluster.rs",
        "clients",
        Family {
            rank: ranks::CLUSTER_CLIENTS,
            name: "CLUSTER_CLIENTS",
            sharded: false,
        },
    ),
    (
        "cluster/src/cluster.rs",
        "policies",
        Family {
            rank: ranks::CLUSTER_POLICIES,
            name: "CLUSTER_POLICIES",
            sharded: false,
        },
    ),
    (
        "cluster/src/replication.rs",
        "inner",
        Family {
            rank: ranks::REPLICATION_LOG,
            name: "REPLICATION_LOG",
            sharded: false,
        },
    ),
    (
        "cluster/src/replication.rs",
        "workers",
        Family {
            rank: ranks::REPLICATION_WORKERS,
            name: "REPLICATION_WORKERS",
            sharded: false,
        },
    ),
    (
        "cluster/src/twopc.rs",
        "open",
        Family {
            rank: ranks::CLUSTER_TX,
            name: "CLUSTER_TX",
            sharded: false,
        },
    ),
    (
        "core/src/store.rs",
        "shards",
        Family {
            rank: ranks::KEY_REGISTRY,
            name: "KEY_REGISTRY",
            sharded: true,
        },
    ),
    (
        "core/src/metadata.rs",
        "shards",
        Family {
            rank: ranks::METADATA_SHARD,
            name: "METADATA_SHARD",
            sharded: true,
        },
    ),
    (
        "core/src/object_cache.rs",
        "shards",
        Family {
            rank: ranks::OBJECT_CACHE_SHARD,
            name: "OBJECT_CACHE_SHARD",
            sharded: true,
        },
    ),
    (
        "core/src/session.rs",
        "shards",
        Family {
            rank: ranks::SESSION_SHARD,
            name: "SESSION_SHARD",
            sharded: true,
        },
    ),
    (
        "policy/src/cache.rs",
        "shards",
        Family {
            rank: ranks::POLICY_CACHE_SHARD,
            name: "POLICY_CACHE_SHARD",
            sharded: true,
        },
    ),
    (
        "policy/src/sharded.rs",
        "shards",
        Family {
            rank: ranks::FIFO_SHARD,
            name: "FIFO_SHARD",
            sharded: true,
        },
    ),
    (
        "core/src/transaction.rs",
        "transactions",
        Family {
            rank: ranks::TX_TABLE,
            name: "TX_TABLE",
            sharded: false,
        },
    ),
    (
        "core/src/transaction.rs",
        "locks",
        Family {
            rank: ranks::TX_LOCKS,
            name: "TX_LOCKS",
            sharded: false,
        },
    ),
    (
        "core/src/result_buffer.rs",
        "inner",
        Family {
            rank: ranks::RESULT_BUFFER,
            name: "RESULT_BUFFER",
            sharded: false,
        },
    ),
    (
        "sgx/src/asyscall.rs",
        "free",
        Family {
            rank: ranks::ASYSCALL_FREE,
            name: "ASYSCALL_FREE",
            sharded: false,
        },
    ),
    (
        "sgx/src/asyscall.rs",
        "body",
        Family {
            rank: ranks::ASYSCALL_SLOT,
            name: "ASYSCALL_SLOT",
            sharded: true,
        },
    ),
    (
        "sgx/src/asyscall.rs",
        "finished",
        Family {
            rank: ranks::ASYSCALL_BATCH,
            name: "ASYSCALL_BATCH",
            sharded: false,
        },
    ),
    (
        "sgx/src/asyscall.rs",
        "cell",
        Family {
            rank: ranks::COMPLETION_CELL,
            name: "COMPLETION_CELL",
            sharded: false,
        },
    ),
    (
        "sgx/src/shield.rs",
        "store",
        Family {
            rank: ranks::SHIELD,
            name: "SHIELD",
            sharded: false,
        },
    ),
    (
        "sgx/src/shield.rs",
        "counters",
        Family {
            rank: ranks::SHIELD,
            name: "SHIELD",
            sharded: false,
        },
    ),
    (
        "kinetic/src/drive.rs",
        "fault",
        Family {
            rank: ranks::DRIVE_FAULT,
            name: "DRIVE_FAULT",
            sharded: false,
        },
    ),
    (
        "kinetic/src/fault.rs",
        "rng",
        Family {
            rank: ranks::FAULT_RNG,
            name: "FAULT_RNG",
            sharded: false,
        },
    ),
    // Fixture scope: lets the fixture tests exercise path-scoped lookups.
    (
        "fixtures/lock_hierarchy.rs",
        "log_inner",
        Family {
            rank: ranks::REPLICATION_LOG,
            name: "REPLICATION_LOG",
            sharded: false,
        },
    ),
];

fn family_for(file: &str, ident: &str) -> Option<Family> {
    for (suffix, name, family) in SCOPED_FAMILIES {
        if ident == *name && file.ends_with(suffix) {
            return Some(*family);
        }
    }
    for (name, family) in GLOBAL_FAMILIES {
        if ident == *name {
            return Some(*family);
        }
    }
    None
}

/// Method names that submit drive I/O and park on completion.
const IO_CALLS: &[&str] = &[
    "submit",
    "submit_async",
    "submit_batch",
    "submit_with_pool",
    "submit_batch_pooled",
    "submit_async_pooled",
    "handle_envelope",
    "exchange",
];

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

struct Allows {
    /// pass slug -> lines on which findings of that pass are suppressed.
    lines: HashMap<Pass, Vec<u32>>,
}

impl Allows {
    fn permits(&self, pass: Pass, line: u32) -> bool {
        self.lines
            .get(&pass)
            .is_some_and(|lines| lines.contains(&line))
    }
}

/// Collects allow directives and reports malformed ones.
fn collect_allows(file: &str, tokens: &[Token], findings: &mut Vec<Finding>) -> Allows {
    let mut lines: HashMap<Pass, Vec<u32>> = HashMap::new();
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != Kind::Comment {
            continue;
        }
        let Some(Directive::Allow { pass, reason }) = parse_directive(&token.text) else {
            continue;
        };
        let Some(pass) = Pass::from_slug(&pass) else {
            findings.push(Finding {
                pass: Pass::BadAllow,
                file: file.to_string(),
                line: token.line,
                message: format!("allow names unknown pass `{pass}`"),
            });
            continue;
        };
        if reason.is_empty() {
            findings.push(Finding {
                pass: Pass::BadAllow,
                file: file.to_string(),
                line: token.line,
                message: format!(
                    "allow({}) carries no reason; suppressions must say why",
                    pass.slug()
                ),
            });
            continue;
        }
        // Trailing on a code line -> applies to that line. Standalone ->
        // applies to the next significant token's line.
        let standalone = !tokens[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == token.line)
            .any(|t| t.kind != Kind::Comment);
        let applies_to = if standalone {
            tokens[i + 1..]
                .iter()
                .find(|t| t.kind != Kind::Comment)
                .map(|t| t.line)
        } else {
            Some(token.line)
        };
        if let Some(line) = applies_to {
            lines.entry(pass).or_default().push(line);
        }
    }
    Allows { lines }
}

/// Marks every token inside `#[cfg(test)]` / `#[test]` items, so the
/// panic-freedom pass skips test code.
fn test_code_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != Kind::Comment)
        .collect();
    let mut s = 0usize;
    while s < sig.len() {
        let i = sig[s];
        let is_attr_open =
            tokens[i].text == "#" && s + 1 < sig.len() && tokens[sig[s + 1]].text == "[";
        if !is_attr_open {
            s += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let mut depth = 0usize;
        let mut t = s + 1;
        let mut attr_text = String::new();
        while t < sig.len() {
            let tok = &tokens[sig[t]];
            if tok.text == "[" {
                depth += 1;
            } else if tok.text == "]" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else {
                attr_text.push_str(&tok.text);
                attr_text.push(' ');
            }
            t += 1;
        }
        let is_test_attr = attr_text.contains("cfg ( test )")
            || attr_text.trim() == "test"
            || attr_text.starts_with("test ");
        if !is_test_attr {
            s = t + 1;
            continue;
        }
        // Skip any further attributes, then the item: everything through
        // its balanced `{ ... }` (or to the terminating `;`).
        let mut u = t + 1;
        while u + 1 < sig.len() && tokens[sig[u]].text == "#" && tokens[sig[u + 1]].text == "[" {
            let mut d = 0usize;
            let mut v = u + 1;
            while v < sig.len() {
                if tokens[sig[v]].text == "[" {
                    d += 1;
                } else if tokens[sig[v]].text == "]" {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                v += 1;
            }
            u = v + 1;
        }
        let mut brace = 0usize;
        let mut entered = false;
        let start_tok = i;
        let mut end_tok = tokens.len() - 1;
        let mut v = u;
        while v < sig.len() {
            let tok = &tokens[sig[v]];
            if tok.text == "{" {
                brace += 1;
                entered = true;
            } else if tok.text == "}" {
                brace = brace.saturating_sub(1);
                if entered && brace == 0 {
                    end_tok = sig[v];
                    break;
                }
            } else if tok.text == ";" && !entered {
                end_tok = sig[v];
                break;
            }
            v += 1;
        }
        for m in mask.iter_mut().take(end_tok + 1).skip(start_tok) {
            *m = true;
        }
        s = v + 1;
    }
    mask
}

/// A lock guard the analyzer currently considers live.
#[derive(Debug)]
struct LiveGuard {
    family: Option<Family>,
    /// Receiver ident (for messages) or bound variable name.
    label: String,
    /// Binding name when `let`-bound (killable by `drop(name)`).
    bound_name: Option<String>,
    /// Brace depth at which the guard dies (`let`-bound: its block;
    /// temporary: the statement's enclosing block).
    depth: usize,
    /// Temporaries die at the next `;` at their depth.
    temp: bool,
    line: u32,
}

/// Lexical lock analysis: lock-hierarchy (pass 1) and guard-across-I/O
/// (pass 2) over one file.
fn lock_passes(
    file: &str,
    tokens: &[Token],
    opts: &Options,
    allows: &Allows,
    findings: &mut Vec<Finding>,
) {
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != Kind::Comment)
        .collect();
    let tok = |s: usize| -> &Token { &tokens[sig[s]] };

    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut brace_depth = 0usize;
    let mut paren_depth = 0usize;
    let mut bracket_depth = 0usize;
    let mut stmt_let_name: Option<String> = None;
    let mut stmt_seen_let = false;
    // `let x = *recv.lock();` binds the deref-copied value, not the
    // guard — the guard is a statement temporary.
    let mut stmt_deref_init = false;
    // A plain `if`/`while` condition is a terminating scope: its
    // temporaries drop before the block runs. (`if let` / `while let`
    // scrutinee temporaries live to the end of the whole expression in
    // edition 2021, so those do NOT set this.)
    let mut cond_start: Option<usize> = None;

    let mut s = 0usize;
    while s < sig.len() {
        let t = tok(s);
        match t.text.as_str() {
            "{" => {
                if paren_depth == 0 && cond_start == Some(brace_depth) {
                    // End of a plain `if`/`while` condition: its
                    // temporaries drop before the block is entered.
                    guards.retain(|g| !(g.temp && g.depth == brace_depth));
                    cond_start = None;
                }
                brace_depth += 1;
                s += 1;
                continue;
            }
            "}" => {
                brace_depth = brace_depth.saturating_sub(1);
                guards.retain(|g| g.depth <= brace_depth);
                stmt_seen_let = false;
                stmt_let_name = None;
                stmt_deref_init = false;
                s += 1;
                continue;
            }
            "(" => {
                paren_depth += 1;
                s += 1;
                continue;
            }
            ")" => {
                paren_depth = paren_depth.saturating_sub(1);
                s += 1;
                continue;
            }
            "[" => {
                bracket_depth += 1;
                s += 1;
                continue;
            }
            "]" => {
                bracket_depth = bracket_depth.saturating_sub(1);
                s += 1;
                continue;
            }
            ";" if paren_depth == 0 && bracket_depth == 0 => {
                guards.retain(|g| !(g.temp && g.depth == brace_depth));
                stmt_seen_let = false;
                stmt_let_name = None;
                stmt_deref_init = false;
                s += 1;
                continue;
            }
            "if" | "while" if t.kind == Kind::Ident && paren_depth == 0 => {
                let next_is_let = s + 1 < sig.len() && tok(s + 1).text == "let";
                if !next_is_let {
                    cond_start = Some(brace_depth);
                }
                s += 1;
                continue;
            }
            "=" if paren_depth == 0 && bracket_depth == 0 && stmt_seen_let => {
                if s + 1 < sig.len() && tok(s + 1).text == "*" {
                    stmt_deref_init = true;
                }
                s += 1;
                continue;
            }
            "let" if t.kind == Kind::Ident && paren_depth == 0 => {
                stmt_seen_let = true;
                // Binding name: first ident after `let` (skipping `mut`).
                let mut u = s + 1;
                while u < sig.len() && tok(u).text == "mut" {
                    u += 1;
                }
                if u < sig.len() && tok(u).kind == Kind::Ident {
                    stmt_let_name = Some(tok(u).text.clone());
                }
                s += 1;
                continue;
            }
            "drop" if t.kind == Kind::Ident => {
                // drop(name) releases a bound guard early.
                if s + 2 < sig.len() && tok(s + 1).text == "(" && tok(s + 2).kind == Kind::Ident {
                    let name = tok(s + 2).text.clone();
                    if s + 3 < sig.len() && tok(s + 3).text == ")" {
                        guards.retain(|g| g.bound_name.as_deref() != Some(name.as_str()));
                    }
                }
                s += 1;
                continue;
            }
            _ => {}
        }

        // Acquisition: `.lock()` / `.read()` / `.write()` with no args.
        let is_acquire = t.kind == Kind::Ident
            && matches!(t.text.as_str(), "lock" | "read" | "write")
            && s >= 1
            && tok(s - 1).text == "."
            && s + 2 < sig.len()
            && tok(s + 1).text == "("
            && tok(s + 2).text == ")";
        if is_acquire && opts.lock_hierarchy {
            let receiver = receiver_idents(&sig, tokens, s - 1);
            let family = receiver.iter().find_map(|ident| family_for(file, ident));
            if let Some(new) = family {
                for held in &guards {
                    let Some(old) = held.family else { continue };
                    let inverted = old.rank > new.rank;
                    let same_family = old.rank == new.rank && old.name == new.name;
                    if (inverted || same_family) && !allows.permits(Pass::LockHierarchy, t.line) {
                        let message = if inverted {
                            format!(
                                "acquires {}({}) while holding {}({}) from line {}: inverts the declared lock hierarchy",
                                new.name, new.rank, old.name, old.rank, held.line
                            )
                        } else if new.sharded {
                            format!(
                                "nests two {} locks (line {} and here); sharded families may nest only with ordered indices",
                                new.name, held.line
                            )
                        } else {
                            format!(
                                "reacquires {} while already holding it (line {}); self-deadlock",
                                new.name, held.line
                            )
                        };
                        findings.push(Finding {
                            pass: Pass::LockHierarchy,
                            file: file.to_string(),
                            line: t.line,
                            message,
                        });
                    }
                }
            }
            // Record the guard. `let`-bound iff the statement began with
            // `let` and the call is the end of the initializer.
            let after = s + 3;
            let is_final = after >= sig.len() || tok(after).text == ";";
            let bound = stmt_seen_let && is_final && !stmt_deref_init;
            guards.push(LiveGuard {
                family,
                label: receiver.first().cloned().unwrap_or_default(),
                bound_name: if bound { stmt_let_name.clone() } else { None },
                depth: brace_depth,
                temp: !bound,
                line: t.line,
            });
            s += 3;
            continue;
        }

        // I/O submission with a live guard.
        let is_io = t.kind == Kind::Ident
            && IO_CALLS.contains(&t.text.as_str())
            && s >= 1
            && tok(s - 1).text == "."
            && s + 1 < sig.len()
            && tok(s + 1).text == "(";
        if is_io && opts.guard_across_io {
            for held in &guards {
                if allows.permits(Pass::GuardAcrossIo, t.line) {
                    break;
                }
                let family = held
                    .family
                    .map(|f| f.name.to_string())
                    .unwrap_or_else(|| format!("`{}`", held.label));
                findings.push(Finding {
                    pass: Pass::GuardAcrossIo,
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "calls {}() while a {} guard from line {} is live; no lock may be held across drive I/O",
                        t.text, family, held.line
                    ),
                });
            }
        }
        s += 1;
    }
}

/// Walks backwards from the `.` before an acquisition and collects the
/// receiver chain's idents, nearest first (`self.a.b.get(k).lock()` ->
/// `["get", "b", "a", "self"]`), skipping balanced call parentheses and
/// index brackets.
fn receiver_idents(sig: &[usize], tokens: &[Token], dot: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut s = dot; // points at the `.`
    loop {
        if s == 0 {
            break;
        }
        s -= 1; // token before the dot
        let t = &tokens[sig[s]];
        match t.text.as_str() {
            ")" | "]" => {
                // Balance backwards.
                let open = if t.text == ")" { "(" } else { "[" };
                let close = t.text.clone();
                let mut depth = 1usize;
                while s > 0 && depth > 0 {
                    s -= 1;
                    let u = &tokens[sig[s]];
                    if u.text == close {
                        depth += 1;
                    } else if u.text == open {
                        depth -= 1;
                    }
                }
                continue; // the token before the open paren is next
            }
            _ if t.kind == Kind::Ident => {
                idents.push(t.text.clone());
                if s == 0 || tokens[sig[s - 1]].text != "." {
                    break;
                }
                s -= 1; // consume the `.` and continue up the chain
                continue;
            }
            _ => break,
        }
    }
    idents
}

/// Panic-freedom (pass 3): `unwrap()`, `expect(`, `panic!`, and
/// slice-indexing outside test code.
fn panic_freedom_pass(file: &str, tokens: &[Token], allows: &Allows, findings: &mut Vec<Finding>) {
    let mask = test_code_mask(tokens);
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != Kind::Comment)
        .collect();
    let mut report = |line: u32, message: String| {
        if !allows.permits(Pass::PanicFreedom, line) {
            findings.push(Finding {
                pass: Pass::PanicFreedom,
                file: file.to_string(),
                line,
                message,
            });
        }
    };
    for (s, &i) in sig.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let t = &tokens[i];
        let next = |k: usize| sig.get(s + k).map(|&j| &tokens[j]);
        let prev = |k: usize| s.checked_sub(k).map(|p| &tokens[sig[p]]);
        match t.text.as_str() {
            "unwrap" | "expect" if t.kind == Kind::Ident => {
                // `.expect(` counts only with a string-literal argument:
                // `Option::expect`/`Result::expect` take a `&str` message,
                // while same-named fallible helpers (e.g. a parser's
                // `self.expect(&Token::RParen)?`) take other arguments.
                let arg_ok = t.text == "unwrap" || next(2).is_some_and(|a| a.kind == Kind::Str);
                if prev(1).is_some_and(|p| p.text == ".")
                    && next(1).is_some_and(|n| n.text == "(")
                    && arg_ok
                {
                    report(
                        t.line,
                        format!(
                            ".{}() can panic; return a typed PesosError on the request path",
                            t.text
                        ),
                    );
                }
            }
            "panic" if t.kind == Kind::Ident && next(1).is_some_and(|n| n.text == "!") => {
                report(
                    t.line,
                    "panic! aborts the (logical) enclave; return a typed PesosError".into(),
                );
            }
            "[" => {
                // Slice/array indexing: `expr[...]` — the token before the
                // bracket ends an expression (ident, `)`, `]`, or a number)
                // and is not a keyword that puts the bracket in type or
                // pattern position (`pub [u8; 32]`, `dyn [..]`, …).
                let Some(p) = prev(1) else { continue };
                let is_index_base = matches!(p.kind, Kind::Ident | Kind::Number)
                    && !matches!(
                        p.text.as_str(),
                        "let"
                            | "mut"
                            | "ref"
                            | "in"
                            | "return"
                            | "box"
                            | "match"
                            | "else"
                            | "pub"
                            | "const"
                            | "static"
                            | "dyn"
                            | "impl"
                            | "as"
                            | "move"
                            | "async"
                            | "unsafe"
                            | "where"
                            | "crate"
                            | "fn"
                    )
                    || p.text == ")"
                    || p.text == "]";
                // Full-range `expr[..]` cannot panic.
                let full_range = next(1).is_some_and(|a| a.text == "..")
                    && next(2).is_some_and(|b| b.text == "]");
                if is_index_base && !full_range {
                    report(
                        t.line,
                        "slice indexing can panic; use get()/split-at-checked or annotate why the bound holds"
                            .into(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// acked ⇒ logged (pass 4): every `Ok(...)` an invariant-marked handler
/// can return must be preceded (lexically) by a replication-log append.
fn acked_logged_pass(file: &str, tokens: &[Token], allows: &Allows, findings: &mut Vec<Finding>) {
    // Find invariant markers and the function bodies that follow them.
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != Kind::Comment {
            continue;
        }
        let Some(Directive::Invariant { name }) = parse_directive(&token.text) else {
            continue;
        };
        if name != "acked_logged" {
            findings.push(Finding {
                pass: Pass::BadAllow,
                file: file.to_string(),
                line: token.line,
                message: format!("unknown invariant `{name}`"),
            });
            continue;
        }
        let sig: Vec<usize> = (i + 1..tokens.len())
            .filter(|&j| tokens[j].kind != Kind::Comment)
            .collect();
        // Locate `fn name ... {` then the balanced body.
        let Some(fn_pos) = sig
            .iter()
            .position(|&j| tokens[j].kind == Kind::Ident && tokens[j].text == "fn")
        else {
            continue;
        };
        let fn_name = sig
            .get(fn_pos + 1)
            .map(|&j| tokens[j].text.clone())
            .unwrap_or_default();
        let Some(body_open) = sig[fn_pos..]
            .iter()
            .position(|&j| tokens[j].text == "{")
            .map(|p| p + fn_pos)
        else {
            continue;
        };
        let mut depth = 0usize;
        let mut body_close = sig.len() - 1;
        for (p, &j) in sig.iter().enumerate().skip(body_open) {
            match tokens[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        body_close = p;
                        break;
                    }
                }
                _ => {}
            }
        }
        let body = &sig[body_open..=body_close];

        // Append sites: `append_for(...)` or `.append(...)`.
        let append_positions: Vec<usize> = body
            .iter()
            .enumerate()
            .filter(|&(p, &j)| {
                let t = &tokens[j];
                t.kind == Kind::Ident
                    && (t.text == "append_for"
                        || (t.text == "append" && p > 0 && tokens[body[p - 1]].text == "."))
            })
            .map(|(p, _)| p)
            .collect();

        // Ack sites: expression-position `Ok(...)`.
        for (p, &j) in body.iter().enumerate() {
            let t = &tokens[j];
            if t.kind != Kind::Ident || t.text != "Ok" {
                continue;
            }
            if body.get(p + 1).map(|&k| tokens[k].text.as_str()) != Some("(") {
                continue;
            }
            let prev_ok = p == 0
                || matches!(
                    tokens[body[p - 1]].text.as_str(),
                    ";" | "{" | "}" | "=>" | "return" | "," | "="
                );
            if !prev_ok {
                continue;
            }
            // Skip match *patterns*: after the balanced close paren the
            // next token is `=>` or `|`.
            let mut depth = 0usize;
            let mut close = p + 1;
            for (q, &k) in body.iter().enumerate().skip(p + 1) {
                match tokens[k].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            close = q;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if matches!(
                body.get(close + 1).map(|&k| tokens[k].text.as_str()),
                Some("=>") | Some("|")
            ) {
                continue;
            }
            let has_earlier_append = append_positions.iter().any(|&a| a < p);
            if !has_earlier_append && !allows.permits(Pass::AckedLogged, t.line) {
                findings.push(Finding {
                    pass: Pass::AckedLogged,
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "`{fn_name}` acknowledges here without a lexically earlier log append; an acked write must be logged before the ack escapes"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Lints one source file. `file` is used for path-scoped family lookup
/// and in findings; it should be workspace-relative.
pub fn lint_source(file: &str, source: &str, opts: &Options) -> Vec<Finding> {
    let tokens = lex(source);
    let mut findings = Vec::new();
    let allows = collect_allows(file, &tokens, &mut findings);
    if opts.lock_hierarchy || opts.guard_across_io {
        lock_passes(file, &tokens, opts, &allows, &mut findings);
    }
    if opts.panic_freedom {
        panic_freedom_pass(file, &tokens, &allows, &mut findings);
    }
    if opts.acked_logged {
        acked_logged_pass(file, &tokens, &allows, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, a.pass.slug()).cmp(&(b.line, b.pass.slug())));
    findings
}

/// Crates whose `src/` trees are linted, and whether they are on the
/// request path (panic-freedom applies).
pub const LINTED_CRATES: &[(&str, bool)] = &[
    ("core", true),
    ("cluster", true),
    ("kinetic", true),
    ("policy", true),
    ("sgx", true),
    ("telemetry", true),
    ("wire", false),
    ("crypto", false),
    ("ycsb", false),
    ("bench", false),
];

/// Lints every workspace crate under `root` (the directory holding the
/// workspace `Cargo.toml`). Returns findings sorted by file and line.
pub fn lint_workspace(root: &std::path::Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (krate, request_path) in LINTED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        let opts = if *request_path {
            Options::all()
        } else {
            Options::without_panic_freedom()
        };
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for path in files {
            let source = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            findings.extend(lint_source(&rel, &source, &opts));
        }
    }
    findings.sort_by_key(|f| (f.file.clone(), f.line));
    Ok(findings)
}

fn collect_rs_files(
    dir: &std::path::Path,
    out: &mut Vec<std::path::PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &std::path::Path) -> Option<std::path::PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_handles_strings_comments_and_lifetimes() {
        let src = r##"
            fn f<'a>(x: &'a str) -> char {
                let _s = "quoted // not a comment [0] .lock()";
                let _r = r#"raw "both" kinds"#;
                let _b = b"bytes";
                let _c = 'x';
                let _e = '\n';
                /* block /* nested */ still comment .unwrap() */
                'y'
            }
        "##;
        let tokens = lex(src);
        assert!(tokens
            .iter()
            .any(|t| t.kind == Kind::Lifetime && t.text == "'a"));
        assert!(tokens
            .iter()
            .any(|t| t.kind == Kind::CharLit && t.text == "'x'"));
        // Nothing inside strings or comments surfaces as idents.
        assert!(!tokens
            .iter()
            .any(|t| t.kind == Kind::Ident && (t.text == "unwrap" || t.text == "lock")));
    }

    #[test]
    fn directive_parsing() {
        match parse_directive("// pesos-lint: allow(panic_freedom, \"bounded by len\")") {
            Some(Directive::Allow { pass, reason }) => {
                assert_eq!(pass, "panic_freedom");
                assert_eq!(reason, "bounded by len");
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_directive("// pesos-lint: invariant(acked_logged)") {
            Some(Directive::Invariant { name }) => assert_eq!(name, "acked_logged"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_directive("// plain comment").is_none());
    }

    #[test]
    fn receiver_chains_resolve_through_calls_and_indexing() {
        let src = "fn f() { self.shards.get(&key).lock(); }";
        let tokens = lex(src);
        let sig: Vec<usize> = (0..tokens.len())
            .filter(|&i| tokens[i].kind != Kind::Comment)
            .collect();
        let lock_pos = sig.iter().position(|&i| tokens[i].text == "lock").unwrap();
        let idents = receiver_idents(&sig, &tokens, lock_pos - 1);
        assert_eq!(idents, vec!["get", "shards", "self"]);
    }

    #[test]
    fn unranked_receivers_are_unchecked() {
        let src = "fn f() { let a = self.mystery.lock(); let b = self.ops_gate.read(); }";
        // `mystery` is unknown -> no hierarchy finding even though a guard
        // is live when ops_gate is taken.
        let findings = lint_source("x.rs", src, &Options::without_panic_freedom());
        assert!(findings.is_empty(), "{findings:?}");
    }
}
