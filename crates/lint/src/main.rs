//! `pesos-lint` binary: lints the workspace's request-path crates.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pesos-lint            # report findings, exit 0
//! cargo run -p pesos-lint -- --check # exit 1 if any finding (CI mode)
//! ```
//!
//! The workspace root is located by walking up from the current
//! directory, so the binary works from any crate directory.

use std::process::ExitCode;

fn main() -> ExitCode {
    let check = std::env::args().any(|a| a == "--check");
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(err) => {
            eprintln!("pesos-lint: cannot read current directory: {err}");
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = pesos_lint::find_workspace_root(&cwd) else {
        eprintln!(
            "pesos-lint: no workspace root (Cargo.toml + crates/) above {}",
            cwd.display()
        );
        return ExitCode::FAILURE;
    };
    let findings = match pesos_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("pesos-lint: {err}");
            return ExitCode::FAILURE;
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!(
            "pesos-lint: clean ({} crates)",
            pesos_lint::LINTED_CRATES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("pesos-lint: {} finding(s)", findings.len());
        if check {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
