//! The live workspace must stay lint-clean: every finding is either fixed
//! or explicitly allow-annotated with a reason. This is the same gate CI
//! runs via `cargo run -p pesos-lint -- --check`.

#[test]
fn workspace_has_no_unallowlisted_findings() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = pesos_lint::find_workspace_root(manifest).expect("workspace root");
    let findings = pesos_lint::lint_workspace(&root).expect("workspace lints");
    assert!(
        findings.is_empty(),
        "unallowlisted findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
