// Fixture for the lock-hierarchy pass. The test asserts exact line
// numbers; keep the layout stable.

struct S {
    routing: parking_lot::RwLock<u32>,
    ops_gate: parking_lot::RwLock<u32>,
    migration_locks: Sharded<parking_lot::Mutex<()>>,
    log_inner: parking_lot::Mutex<u32>,
}

impl S {
    fn inverted(&self) {
        let _r = self.routing.read();
        let _g = self.ops_gate.read(); // line 14: OPS_GATE under ROUTING_STATE
    }

    fn ascending_is_fine(&self) {
        let _g = self.ops_gate.read();
        let _r = self.routing.read();
        let _l = self.log_inner.lock();
    }

    fn sharded_same_family(&self) {
        let _a = self.migration_locks.get(&1).lock();
        let _b = self.migration_locks.get(&2).lock(); // line 25: same family
    }

    fn drop_releases(&self) {
        let r = self.routing.read();
        drop(r);
        let _g = self.ops_gate.read();
    }

    fn condition_temporary_is_released(&self) {
        if self.log_inner.lock().eq(&0) {
            let _r = self.routing.read();
        }
    }

    fn allowed(&self) {
        let _l = self.log_inner.lock();
        // pesos-lint: allow(lock_hierarchy, "stripe indices are ordered by construction")
        let _r = self.routing.read();
    }
}
