// Fixture for the guard-across-I/O pass. The test asserts exact line
// numbers; keep the layout stable.

struct S;

impl S {
    fn guard_live_across_submit(&self) {
        let _gate = self.ops_gate.read();
        self.asyscall.submit_batch(work); // line 9: guard from line 8 live
    }

    fn unranked_guard_also_counts(&self) {
        let pending = self.queue.lock();
        self.drive.exchange(envelope); // line 14: `queue` guard live
        drop(pending);
    }

    fn scoped_guard_is_fine(&self) {
        {
            let _gate = self.ops_gate.read();
        }
        self.asyscall.submit_batch(work);
    }

    fn temporary_dies_at_statement_end(&self) {
        let snapshot = self.ops_gate.read().clone();
        self.asyscall.submit_async(move || drop(snapshot));
    }

    fn allowed(&self) {
        let _gate = self.ops_gate.read();
        // pesos-lint: allow(guard_across_io, "the batch must be joined under the gate by design")
        self.asyscall.submit_batch(work);
    }
}
