// Fixture for the panic-freedom pass. The test asserts exact line
// numbers; keep the layout stable.

fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // line 5
}

fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("present") // line 9
}

fn fallible_helper_named_expect(p: &mut Parser) -> Result<(), Error> {
    p.expect(&Token::RParen) // not Option::expect: no string argument
}

fn bad_panic() {
    panic!("boom"); // line 17
}

fn bad_index(v: &[u32]) -> u32 {
    v[0] // line 21
}

fn full_range_is_infallible(v: &[u32]) -> &[u32] {
    &v[..]
}

fn allowed(v: &[u32]) -> u32 {
    // pesos-lint: allow(panic_freedom, "caller guarantees a non-empty slice")
    v[0]
}

fn empty_reason_does_not_suppress(v: &[u32]) -> u32 {
    // pesos-lint: allow(panic_freedom, "")
    v[0] // line 35: still reported, plus bad_allow on line 34
}

fn unknown_slug() {
    // pesos-lint: allow(no_such_pass, "irrelevant") -- line 39: bad_allow
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1u32];
        assert_eq!(v[0], 1);
        Some(2u32).unwrap();
        panic!("fine in tests");
    }
}
