// Fixture for the acked=>logged pass. The test asserts exact line
// numbers; keep the layout stable.

impl Handler {
    // pesos-lint: invariant(acked_logged)
    fn put(&self) -> Result<u64, Error> {
        let version = self.store.put()?;
        self.log.append(record(version));
        Ok(version)
    }

    // pesos-lint: invariant(acked_logged)
    fn put_async(&self) -> Result<u64, Error> {
        let op = self.store.put_async()?;
        Ok(op) // line 15: ack without a lexically earlier append
    }

    // pesos-lint: invariant(acked_logged)
    fn delete(&self) -> Result<(), Error> {
        let outcome = match self.store.delete() {
            Ok(v) => v,
            Err(e) => return Err(e),
        };
        self.append_for(&self.owner, record(outcome));
        Ok(())
    }

    // pesos-lint: invariant(acked_logged)
    fn allowed(&self) -> Result<u64, Error> {
        // pesos-lint: allow(acked_logged, "replication is off on this path")
        Ok(0)
    }

    // pesos-lint: invariant(bogus) -- line 34: bad_allow, unknown invariant
    fn misnamed(&self) -> Result<(), Error> {
        Ok(())
    }

    fn unmarked_is_not_checked(&self) -> Result<u64, Error> {
        Ok(12)
    }
}
