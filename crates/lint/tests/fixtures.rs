//! Fixture tests: each pass runs over a small source file with known
//! violations and the findings must match exactly — pass, file, and line.

use pesos_lint::{lint_source, Finding, Options, Pass};

fn lint_fixture(name: &str, opts: &Options) -> Vec<Finding> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    // The relative name drives path-scoped family lookup.
    lint_source(&format!("fixtures/{name}"), &source, opts)
}

fn as_pass_lines(findings: &[Finding]) -> Vec<(Pass, u32)> {
    findings.iter().map(|f| (f.pass, f.line)).collect()
}

#[test]
fn lock_hierarchy_fixture() {
    let findings = lint_fixture("lock_hierarchy.rs", &Options::without_panic_freedom());
    assert_eq!(
        as_pass_lines(&findings),
        vec![(Pass::LockHierarchy, 14), (Pass::LockHierarchy, 25)],
        "{findings:#?}"
    );
    assert!(findings[0].message.contains("OPS_GATE"));
    assert!(findings[0].message.contains("ROUTING_STATE"));
    assert!(findings[1].message.contains("MIGRATION_STRIPE"));
}

#[test]
fn guard_across_io_fixture() {
    let findings = lint_fixture("guard_across_io.rs", &Options::without_panic_freedom());
    assert_eq!(
        as_pass_lines(&findings),
        vec![(Pass::GuardAcrossIo, 9), (Pass::GuardAcrossIo, 14)],
        "{findings:#?}"
    );
    assert!(findings[0].message.contains("OPS_GATE"));
    assert!(findings[1].message.contains("queue"));
}

#[test]
fn panic_freedom_fixture() {
    let findings = lint_fixture("panic_freedom.rs", &Options::all());
    assert_eq!(
        as_pass_lines(&findings),
        vec![
            (Pass::PanicFreedom, 5),
            (Pass::PanicFreedom, 9),
            (Pass::PanicFreedom, 17),
            (Pass::PanicFreedom, 21),
            (Pass::BadAllow, 34),
            (Pass::PanicFreedom, 35),
            (Pass::BadAllow, 39),
        ],
        "{findings:#?}"
    );
}

#[test]
fn acked_logged_fixture() {
    let findings = lint_fixture("acked_logged.rs", &Options::all());
    assert_eq!(
        as_pass_lines(&findings),
        vec![(Pass::AckedLogged, 15), (Pass::BadAllow, 34)],
        "{findings:#?}"
    );
    assert!(findings[0].message.contains("put_async"));
}

#[test]
fn fixture_files_report_their_path() {
    let findings = lint_fixture("panic_freedom.rs", &Options::all());
    assert!(findings
        .iter()
        .all(|f| f.file == "fixtures/panic_freedom.rs"));
}
