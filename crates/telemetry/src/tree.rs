//! The hierarchical `/stats` attribute tree.
//!
//! Telemetry is exposed as a directory tree of named attributes (the
//! sysfs `AttributeGroup` idiom): inner nodes are directories, leaves are
//! single values. A snapshot of the live counters is rendered into a
//! [`StatsNode`] and then served by path — resolving a leaf returns its
//! value, resolving a directory returns a listing (tree-shaped by
//! default, flat `path value` lines on request).

/// One node of the stats tree: a directory of named children (insertion
/// order preserved) or a single rendered value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsNode {
    /// An inner node; children are listed in insertion order.
    Dir(Vec<(String, StatsNode)>),
    /// A single attribute value.
    Leaf(String),
}

impl StatsNode {
    /// A leaf holding `value`'s display form.
    pub fn leaf(value: impl ToString) -> StatsNode {
        StatsNode::Leaf(value.to_string())
    }

    /// An empty directory.
    pub fn dir() -> StatsNode {
        StatsNode::Dir(Vec::new())
    }

    /// Adds (or replaces) child `name`; only meaningful on a `Dir`.
    pub fn insert(&mut self, name: impl Into<String>, node: StatsNode) {
        if let StatsNode::Dir(children) = self {
            let name = name.into();
            if let Some(existing) = children.iter_mut().find(|(n, _)| *n == name) {
                existing.1 = node;
            } else {
                children.push((name, node));
            }
        }
    }

    /// Builder form of [`StatsNode::insert`].
    pub fn with(mut self, name: impl Into<String>, node: StatsNode) -> StatsNode {
        self.insert(name, node);
        self
    }

    /// Resolves a `/`-separated path relative to this node. The empty
    /// path (or `"/"`) resolves to the node itself.
    pub fn resolve(&self, path: &str) -> Option<&StatsNode> {
        let mut node = self;
        for segment in path.split('/').filter(|s| !s.is_empty()) {
            match node {
                StatsNode::Dir(children) => {
                    node = children
                        .iter()
                        .find(|(name, _)| name == segment)
                        .map(|(_, child)| child)?;
                }
                StatsNode::Leaf(_) => return None,
            }
        }
        Some(node)
    }

    /// Flat listing: one `path value` line per leaf under this node,
    /// paths relative to it.
    pub fn render_flat(&self) -> String {
        let mut out = String::new();
        self.flatten("", &mut out);
        out
    }

    fn flatten(&self, prefix: &str, out: &mut String) {
        match self {
            StatsNode::Leaf(value) => {
                out.push_str(prefix.trim_end_matches('/'));
                out.push(' ');
                out.push_str(value);
                out.push('\n');
            }
            StatsNode::Dir(children) => {
                for (name, child) in children {
                    let path = format!("{prefix}{name}/");
                    child.flatten(&path, out);
                }
            }
        }
    }

    /// Tree listing: directories end in `/`, leaves print `name = value`,
    /// nesting shown by two-space indentation.
    pub fn render_tree(&self) -> String {
        match self {
            StatsNode::Leaf(value) => {
                let mut s = value.clone();
                s.push('\n');
                s
            }
            StatsNode::Dir(_) => {
                let mut out = String::new();
                self.tree_lines(0, &mut out);
                out
            }
        }
    }

    fn tree_lines(&self, depth: usize, out: &mut String) {
        if let StatsNode::Dir(children) = self {
            for (name, child) in children {
                for _ in 0..depth {
                    out.push_str("  ");
                }
                match child {
                    StatsNode::Leaf(value) => {
                        out.push_str(name);
                        out.push_str(" = ");
                        out.push_str(value);
                        out.push('\n');
                    }
                    StatsNode::Dir(_) => {
                        out.push_str(name);
                        out.push_str("/\n");
                        child.tree_lines(depth + 1, out);
                    }
                }
            }
        }
    }
}

/// Splits a stats path into its path and optional query parts
/// (`"groups/hot?top=4"` → `("groups/hot", Some("top=4"))`).
pub fn split_query(path: &str) -> (&str, Option<&str>) {
    match path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (path, None),
    }
}

/// Looks up `key` in a `k=v&k=v` query string. A bare `k` with no `=`
/// reads as present with an empty value, so boolean flags can be
/// requested as `?flat`.
pub fn query_param<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query?
        .split('&')
        .map(|pair| pair.split_once('=').unwrap_or((pair, "")))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// Serves one stats request against a rendered tree: resolves `path` and
/// renders the result — a leaf as its bare value, a directory as a tree
/// listing (or flat `path value` lines when `flat` is set). `None` when
/// the path does not exist.
pub fn serve(tree: &StatsNode, path: &str, flat: bool) -> Option<String> {
    let node = tree.resolve(path)?;
    Some(match node {
        StatsNode::Leaf(value) => {
            let mut s = value.clone();
            s.push('\n');
            s
        }
        StatsNode::Dir(_) if flat => node.render_flat(),
        StatsNode::Dir(_) => node.render_tree(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsNode {
        StatsNode::dir().with(
            "partitions",
            StatsNode::dir()
                .with(
                    "0",
                    StatsNode::dir()
                        .with("resident_objects", StatsNode::leaf(12))
                        .with(
                            "replication",
                            StatsNode::dir().with("lag", StatsNode::leaf(3)),
                        ),
                )
                .with(
                    "1",
                    StatsNode::dir().with("resident_objects", StatsNode::leaf(7)),
                ),
        )
    }

    #[test]
    fn resolves_paths_and_rejects_missing_ones() {
        let tree = sample();
        assert_eq!(
            tree.resolve("partitions/0/replication/lag"),
            Some(&StatsNode::Leaf("3".into()))
        );
        assert_eq!(tree.resolve(""), Some(&tree));
        assert!(tree.resolve("partitions/2").is_none());
        assert!(tree
            .resolve("partitions/0/resident_objects/deeper")
            .is_none());
    }

    #[test]
    fn flat_and_tree_renderings() {
        let tree = sample();
        let flat = tree.render_flat();
        assert!(flat.contains("partitions/0/replication/lag 3\n"));
        assert!(flat.contains("partitions/1/resident_objects 7\n"));
        let listing = tree.render_tree();
        assert!(listing.contains("partitions/\n"));
        assert!(listing.contains("    resident_objects = 12\n"));
        assert_eq!(
            serve(&tree, "partitions/0/replication/lag", false).as_deref(),
            Some("3\n")
        );
        assert!(serve(&tree, "nope", false).is_none());
    }

    #[test]
    fn query_helpers() {
        assert_eq!(
            split_query("groups/hot?top=4"),
            ("groups/hot", Some("top=4"))
        );
        assert_eq!(split_query("groups/hot"), ("groups/hot", None));
        assert_eq!(query_param(Some("top=4&flat=1"), "top"), Some("4"));
        assert_eq!(query_param(Some("top=4&flat=1"), "flat"), Some("1"));
        assert_eq!(query_param(Some("top=4"), "missing"), None);
        assert_eq!(query_param(None, "top"), None);
    }

    #[test]
    fn insert_replaces_existing_children() {
        let mut d = StatsNode::dir().with("a", StatsNode::leaf(1));
        d.insert("a", StatsNode::leaf(2));
        assert_eq!(d.resolve("a"), Some(&StatsNode::Leaf("2".into())));
    }
}
