//! Log-scaled latency histograms: fixed power-of-two buckets, lock-free
//! recording, windowed snapshots, and exact merging across shards.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per bit width of a `u64` value. Bucket 0 counts
/// values `0..=1`; bucket `b` (for `b >= 1`) counts `2^b ..= 2^(b+1)-1`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The bucket index a value lands in.
fn bucket_of(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `b` — the value a quantile read
/// reports, so quantiles over-approximate (never flatter a latency).
fn bucket_ceiling(bucket: usize) -> u64 {
    let shift = 63usize.saturating_sub(bucket) as u32;
    u64::MAX >> shift
}

/// A log-scaled histogram of `u64` samples (microseconds, by convention).
///
/// Recording is one relaxed `fetch_add` into a fixed bucket array — no
/// locks, no allocation — so it can sit on the request path. A second
/// baseline array makes window resets lock-free too: `reset_window` copies
/// the live counters into the baseline, and snapshots report the
/// difference, so no increment is ever lost to a reset.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    baseline: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    sum_baseline: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            baseline: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            sum_baseline: AtomicU64::new(0),
        }
    }

    /// Records one sample. Compiled to a no-op with the `disabled` feature.
    pub fn record(&self, value: u64) {
        if !crate::compiled_in() {
            return;
        }
        if let Some(bucket) = self.buckets.get(bucket_of(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Point-in-time snapshot of the current window (samples recorded
    /// since the last [`Histogram::reset_window`]).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for (i, dst) in out.buckets.iter_mut().enumerate() {
            let live = self.buckets.get(i).map_or(0, |b| b.load(Ordering::Relaxed));
            let base = self
                .baseline
                .get(i)
                .map_or(0, |b| b.load(Ordering::Relaxed));
            *dst = live.saturating_sub(base);
        }
        out.sum = self
            .sum
            .load(Ordering::Relaxed)
            .saturating_sub(self.sum_baseline.load(Ordering::Relaxed));
        out
    }

    /// Starts a new window: every counter's current value becomes its
    /// baseline. Lock-free — recordings racing the reset land in either
    /// the old or the new window, never nowhere.
    pub fn reset_window(&self) {
        for (live, base) in self.buckets.iter().zip(self.baseline.iter()) {
            base.store(live.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum_baseline
            .store(self.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// A plain-data copy of a [`Histogram`] window; mergeable across shards.
#[derive(Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded values (for the mean).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish_non_exhaustive()
    }
}

impl PartialEq for HistogramSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.sum == other.sum && self.buckets == other.buckets
    }
}

impl Eq for HistogramSnapshot {}

impl HistogramSnapshot {
    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether the window recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), reported as the inclusive upper
    /// bound of the bucket the quantile falls in — an over-approximation,
    /// exact to within the bucket's factor-of-two width. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_ceiling(bucket);
            }
        }
        bucket_ceiling(HISTOGRAM_BUCKETS - 1)
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, n)| **n > 0)
            .map(|(bucket, _)| bucket_ceiling(bucket))
            .unwrap_or(0)
    }

    /// Merges another snapshot in. Bucket-exact: merging per-shard
    /// snapshots equals one snapshot of the union of their samples.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two_ranges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_ceiling(0), 1);
        assert_eq!(bucket_ceiling(1), 3);
        assert_eq!(bucket_ceiling(10), 2047);
        assert_eq!(bucket_ceiling(63), u64::MAX);
    }

    #[test]
    fn record_snapshot_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 101_106);
        assert_eq!(s.mean(), 101_106 / 6);
        assert!(s.quantile(0.5) >= 3);
        assert!(s.quantile(1.0) >= 100_000);
        assert!(s.max() >= 100_000);
        assert_eq!(s.quantile(0.0), 1); // rank clamps to the first sample
    }

    #[test]
    fn window_reset_subtracts_baseline() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        assert_eq!(h.snapshot().count(), 2);
        h.reset_window();
        assert!(h.snapshot().is_empty());
        assert_eq!(h.snapshot().mean(), 0);
        h.record(40);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum, 40);
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let union = Histogram::new();
        for v in 0..100u64 {
            if v % 3 == 0 {
                a.record(v * 7)
            } else {
                b.record(v * 7)
            }
            union.record(v * 7);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
    }
}
