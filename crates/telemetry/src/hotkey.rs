//! Sharded, windowed per-placement-group operation counters.
//!
//! A fixed, power-of-two table of slots keyed by routing hash. Recording
//! is a short linear probe plus one relaxed `fetch_add` — no locks on the
//! request path; the only allocation is the group's display name, stored
//! once when a slot is first claimed. The table never grows: once the
//! probe window around a hash is full, further *new* groups under it are
//! counted in an overflow tally instead (hot groups by definition recur,
//! so they claim slots early; the overflow tally makes the loss visible).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Linear-probe window: a new group tries this many slots before landing
/// in the overflow tally.
const PROBE: u64 = 8;

/// An empty slot's tag. A routing hash of exactly 0 is remapped to
/// `u64::MAX` before tagging (routing hashes are SHA-256-derived, so both
/// values are vanishingly rare; a collision merely merges two groups'
/// tallies — telemetry, not correctness).
const EMPTY: u64 = 0;

struct Slot {
    /// The claiming group's (remapped) routing hash; [`EMPTY`] when free.
    tag: AtomicU64,
    count: AtomicU64,
    baseline: AtomicU64,
    /// Display name (the routing prefix), set once by the claiming thread.
    /// Readers racing the claim render the hash instead.
    name: OnceLock<Box<str>>,
}

impl Slot {
    fn new() -> Self {
        Slot {
            tag: AtomicU64::new(EMPTY),
            count: AtomicU64::new(0),
            baseline: AtomicU64::new(0),
            name: OnceLock::new(),
        }
    }

    fn windowed(&self) -> u64 {
        self.count
            .load(Ordering::Relaxed)
            .saturating_sub(self.baseline.load(Ordering::Relaxed))
    }
}

/// One hot group, as reported by [`HotKeyTracker::top`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotGroup {
    /// The group's routing prefix (or `#<hex hash>` if the name was still
    /// being claimed when read).
    pub group: String,
    /// Operations recorded for the group in the current window.
    pub ops: u64,
}

/// Lock-free tracker of per-group operation counts, windowed like the
/// partition-load accounting: [`HotKeyTracker::reset_window`] restarts
/// the tallies without touching the lifetime counters.
pub struct HotKeyTracker {
    slots: Box<[Slot]>,
    mask: u64,
    /// Records that found no free slot within the probe window.
    overflow: AtomicU64,
}

impl std::fmt::Debug for HotKeyTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotKeyTracker")
            .field("capacity", &self.slots.len())
            .field("tracked", &self.tracked())
            .field("overflow", &self.overflow.load(Ordering::Relaxed))
            .finish()
    }
}

impl HotKeyTracker {
    /// A tracker with at least `capacity` slots (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.clamp(8, 1 << 20).next_power_of_two();
        HotKeyTracker {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            mask: capacity as u64 - 1,
            overflow: AtomicU64::new(0),
        }
    }

    fn tag_of(hash: u64) -> u64 {
        if hash == EMPTY {
            u64::MAX
        } else {
            hash
        }
    }

    /// Counts one operation against the group with routing hash `hash`;
    /// `name` is the group's routing prefix, copied only if this record
    /// claims a fresh slot. Compiled to a no-op with the `disabled`
    /// feature.
    pub fn record(&self, hash: u64, name: &str) {
        if !crate::compiled_in() {
            return;
        }
        let tag = Self::tag_of(hash);
        for i in 0..PROBE {
            let index = (tag.wrapping_add(i) & self.mask) as usize;
            let Some(slot) = self.slots.get(index) else {
                continue;
            };
            let current = slot.tag.load(Ordering::Acquire);
            if current == tag {
                slot.count.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if current == EMPTY {
                match slot
                    .tag
                    .compare_exchange(EMPTY, tag, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        let _ = slot.name.set(name.into());
                        slot.count.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(actual) if actual == tag => {
                        // Another thread claimed the slot for this same
                        // group between the load and the exchange.
                        slot.count.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(_) => {} // claimed by a different group; keep probing
                }
            }
        }
        self.overflow.fetch_add(1, Ordering::Relaxed);
    }

    /// Windowed operation count for the group with routing hash `hash`
    /// (0 if untracked).
    pub fn ops_for(&self, hash: u64) -> u64 {
        let tag = Self::tag_of(hash);
        for i in 0..PROBE {
            let index = (tag.wrapping_add(i) & self.mask) as usize;
            let Some(slot) = self.slots.get(index) else {
                continue;
            };
            if slot.tag.load(Ordering::Acquire) == tag {
                return slot.windowed();
            }
        }
        0
    }

    /// Total windowed operations across all tracked groups. Zero means
    /// the window is cold (nothing recorded since the last reset).
    pub fn total(&self) -> u64 {
        self.slots.iter().map(Slot::windowed).sum()
    }

    /// Number of groups holding a slot.
    pub fn tracked(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.tag.load(Ordering::Relaxed) != EMPTY)
            .count()
    }

    /// Records that fell into the overflow tally (probe window full).
    pub fn overflowed(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// The `k` hottest groups of the current window, hottest first; ties
    /// break by name so the order is stable.
    pub fn top(&self, k: usize) -> Vec<HotGroup> {
        let mut groups: Vec<HotGroup> = self
            .slots
            .iter()
            .filter(|s| s.tag.load(Ordering::Acquire) != EMPTY)
            .map(|s| HotGroup {
                group: s
                    .name
                    .get()
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| format!("#{:016x}", s.tag.load(Ordering::Relaxed))),
                ops: s.windowed(),
            })
            .filter(|g| g.ops > 0)
            .collect();
        groups.sort_by(|a, b| b.ops.cmp(&a.ops).then_with(|| a.group.cmp(&b.group)));
        groups.truncate(k);
        groups
    }

    /// Starts a new window (see [`crate::Histogram::reset_window`] for the
    /// lock-free baseline scheme).
    pub fn reset_window(&self) {
        for slot in self.slots.iter() {
            slot.baseline
                .store(slot.count.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ranks_groups() {
        let t = HotKeyTracker::new(64);
        for _ in 0..10 {
            t.record(111, "alpha");
        }
        for _ in 0..3 {
            t.record(222, "beta");
        }
        t.record(333, "gamma");
        assert_eq!(t.ops_for(111), 10);
        assert_eq!(t.ops_for(222), 3);
        assert_eq!(t.ops_for(999), 0);
        assert_eq!(t.total(), 14);
        assert_eq!(t.tracked(), 3);
        let top = t.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(
            top[0],
            HotGroup {
                group: "alpha".into(),
                ops: 10
            }
        );
        assert_eq!(
            top[1],
            HotGroup {
                group: "beta".into(),
                ops: 3
            }
        );
    }

    #[test]
    fn window_reset_clears_tallies_not_slots() {
        let t = HotKeyTracker::new(64);
        t.record(7, "g");
        t.reset_window();
        assert_eq!(t.ops_for(7), 0);
        assert_eq!(t.total(), 0);
        assert_eq!(t.tracked(), 1);
        assert!(t.top(8).is_empty());
        t.record(7, "g");
        assert_eq!(t.ops_for(7), 1);
    }

    #[test]
    fn zero_hash_is_remapped_not_lost() {
        let t = HotKeyTracker::new(8);
        t.record(0, "zero");
        assert_eq!(t.ops_for(0), 1);
        assert_eq!(t.tracked(), 1);
    }

    #[test]
    fn overflow_is_tallied_once_probe_window_fills() {
        let t = HotKeyTracker::new(8); // 8 slots, probe window 8
        for hash in 1..=20u64 {
            t.record(hash, "g");
        }
        assert_eq!(t.tracked(), 8);
        assert_eq!(t.overflowed() + 8, 20);
        // Existing groups still count despite the full table.
        let before = t.total();
        t.record(1, "g");
        assert_eq!(t.total(), before + 1);
    }
}
