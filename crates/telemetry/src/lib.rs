//! Lock-free telemetry primitives for the Pesos request path.
//!
//! Everything here is built from atomics: recording a sample never takes
//! a lock, never allocates (except a hot-key slot's one-time name copy),
//! and never blocks the request that produced it. The crate has zero
//! dependencies so every layer — crypto, store, controller, cluster — can
//! feed it without cycles.
//!
//! Four pieces:
//!
//! - [`Histogram`]: log-scaled latency histograms (fixed power-of-two
//!   buckets, mergeable across shards, windowed via lock-free baselines).
//! - [`OpHistograms`]: one histogram per [`OpKind`] plus the [`OpTimer`]
//!   drop guard that wraps every `RequestEndpoint` operation.
//! - [`HotKeyTracker`]: sharded, windowed per-placement-group operation
//!   counters — the input to hot-key-weighted rebalancing and the
//!   `/stats/groups/hot` view.
//! - [`StatsNode`]: the hierarchical attribute tree the REST `/stats`
//!   endpoint serves, with tree and flat renderings.
//!
//! # `/stats` path grammar
//!
//! A stats request addresses the tree with a `/`-separated path and an
//! optional query:
//!
//! ```text
//! stats-path := segment ("/" segment)* ("?" query)?
//! segment    := attribute or directory name ([a-z0-9_] and partition
//!               or migration indexes)
//! query      := param ("&" param)*
//! param      := "top=" N      (groups/hot: number of groups, default 16)
//!             | "flat=1"      (render a directory as flat "path value"
//!                              lines instead of the tree listing)
//! ```
//!
//! Resolving a *leaf* returns its bare value; resolving a *directory*
//! returns a listing of everything beneath it. The empty path serves the
//! whole tree. The reserved path `reset` is not a node: it restarts the
//! telemetry windows (`/stats/reset`). Examples against a cluster:
//!
//! ```text
//! /stats                                  whole tree, tree listing
//! /stats?flat=1                           whole tree, flat lines
//! /stats/partitions/3/replication/lag     one gauge, bare value
//! /stats/groups/hot?top=16                the 16 hottest groups
//! /stats/ops/put/p99_us                   cluster-level put p99 (µs)
//! /stats/reset                            restart the windows
//! ```
//!
//! Compiling with the `disabled` feature turns every recording path into
//! a no-op (the tree still serves, reading all zeros).

mod hist;
mod hotkey;
mod tree;

pub use hist::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use hotkey::{HotGroup, HotKeyTracker};
pub use tree::{query_param, serve, split_query, StatsNode};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Whether recording is compiled in (false with the `disabled` feature).
pub const fn compiled_in() -> bool {
    cfg!(not(feature = "disabled"))
}

/// The request-path operations latency histograms are kept for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Synchronous object store.
    Put,
    /// Asynchronous object store (time to acceptance).
    PutAsync,
    /// Latest-version read.
    Get,
    /// History read of a specific version.
    GetVersion,
    /// Object delete.
    Delete,
    /// Policy attach to an existing object.
    AttachPolicy,
    /// Policy install.
    PutPolicy,
    /// Transaction commit (two-phase, at the cluster).
    CommitTx,
}

impl OpKind {
    /// Every kind, in display order.
    pub const ALL: [OpKind; 8] = [
        OpKind::Put,
        OpKind::PutAsync,
        OpKind::Get,
        OpKind::GetVersion,
        OpKind::Delete,
        OpKind::AttachPolicy,
        OpKind::PutPolicy,
        OpKind::CommitTx,
    ];

    /// The stats-tree directory name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Put => "put",
            OpKind::PutAsync => "put_async",
            OpKind::Get => "get",
            OpKind::GetVersion => "get_version",
            OpKind::Delete => "delete",
            OpKind::AttachPolicy => "attach_policy",
            OpKind::PutPolicy => "put_policy",
            OpKind::CommitTx => "commit_tx",
        }
    }

    fn index(self) -> usize {
        match self {
            OpKind::Put => 0,
            OpKind::PutAsync => 1,
            OpKind::Get => 2,
            OpKind::GetVersion => 3,
            OpKind::Delete => 4,
            OpKind::AttachPolicy => 5,
            OpKind::PutPolicy => 6,
            OpKind::CommitTx => 7,
        }
    }
}

/// One latency [`Histogram`] per [`OpKind`], in microseconds.
#[derive(Debug)]
pub struct OpHistograms {
    hists: [Histogram; OpKind::ALL.len()],
}

impl Default for OpHistograms {
    fn default() -> Self {
        Self::new()
    }
}

impl OpHistograms {
    /// Empty histograms for every kind.
    pub fn new() -> Self {
        OpHistograms {
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Records one operation's latency.
    pub fn record(&self, kind: OpKind, micros: u64) {
        if let Some(hist) = self.hists.get(kind.index()) {
            hist.record(micros);
        }
    }

    /// Starts the operation timer that records into `kind`'s histogram
    /// when dropped (so error paths are timed too). With `enabled` false
    /// the guard does nothing — the runtime off-switch benches compare
    /// against.
    pub fn timer(&self, kind: OpKind, enabled: bool) -> OpTimer<'_> {
        OpTimer {
            pending: (enabled && compiled_in()).then(|| (self, kind, Instant::now())),
        }
    }

    /// Snapshot of one kind's current window.
    pub fn snapshot(&self, kind: OpKind) -> HistogramSnapshot {
        self.hists
            .get(kind.index())
            .map(Histogram::snapshot)
            .unwrap_or_default()
    }

    /// Snapshots of every kind's current window, in display order.
    pub fn snapshots(&self) -> Vec<(OpKind, HistogramSnapshot)> {
        OpKind::ALL
            .iter()
            .map(|&kind| (kind, self.snapshot(kind)))
            .collect()
    }

    /// Starts a new window on every histogram.
    pub fn reset_window(&self) {
        for hist in self.hists.iter() {
            hist.reset_window();
        }
    }
}

/// Drop guard recording the elapsed time of one operation (µs).
pub struct OpTimer<'a> {
    pending: Option<(&'a OpHistograms, OpKind, Instant)>,
}

impl Drop for OpTimer<'_> {
    fn drop(&mut self) {
        if let Some((hists, kind, start)) = self.pending.take() {
            let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            hists.record(kind, micros);
        }
    }
}

/// Renders one histogram window as a stats directory
/// (`count`, `mean_us`, `p50_us`, `p95_us`, `p99_us`, `max_us`).
pub fn histogram_node(s: &HistogramSnapshot) -> StatsNode {
    StatsNode::dir()
        .with("count", StatsNode::leaf(s.count()))
        .with("mean_us", StatsNode::leaf(s.mean()))
        .with("p50_us", StatsNode::leaf(s.quantile(0.50)))
        .with("p95_us", StatsNode::leaf(s.quantile(0.95)))
        .with("p99_us", StatsNode::leaf(s.quantile(0.99)))
        .with("max_us", StatsNode::leaf(s.max()))
}

/// Renders a full [`OpHistograms`] as a stats directory with one
/// [`histogram_node`] per operation, in display order.
pub fn ops_node(ops: &OpHistograms) -> StatsNode {
    let mut dir = StatsNode::dir();
    for (kind, snapshot) in ops.snapshots() {
        dir.insert(kind.as_str(), histogram_node(&snapshot));
    }
    dir
}

/// A lifetime counter with a windowed view: [`WindowedCounter::add`] is
/// one relaxed `fetch_add`; [`WindowedCounter::reset_window`] restarts
/// the windowed reading without disturbing the lifetime total (the same
/// lock-free baseline scheme as [`Histogram`]).
#[derive(Debug, Default)]
pub struct WindowedCounter {
    value: AtomicU64,
    baseline: AtomicU64,
}

impl WindowedCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` (no-op with the `disabled` feature).
    pub fn add(&self, n: u64) {
        if compiled_in() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The count since the last [`WindowedCounter::reset_window`].
    pub fn windowed(&self) -> u64 {
        self.value
            .load(Ordering::Relaxed)
            .saturating_sub(self.baseline.load(Ordering::Relaxed))
    }

    /// The lifetime count.
    pub fn lifetime(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Restarts the window.
    pub fn reset_window(&self) {
        self.baseline
            .store(self.value.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_names_are_unique() {
        let mut names: Vec<&str> = OpKind::ALL.iter().map(|k| k.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpKind::ALL.len());
        let mut indexes: Vec<usize> = OpKind::ALL.iter().map(|k| k.index()).collect();
        indexes.sort_unstable();
        assert_eq!(indexes, (0..OpKind::ALL.len()).collect::<Vec<_>>());
    }

    #[test]
    fn timer_records_on_drop_only_when_enabled() {
        let ops = OpHistograms::new();
        {
            let _t = ops.timer(OpKind::Get, true);
        }
        {
            let _t = ops.timer(OpKind::Get, false);
        }
        assert_eq!(ops.snapshot(OpKind::Get).count(), 1);
        assert_eq!(ops.snapshot(OpKind::Put).count(), 0);
        ops.reset_window();
        assert_eq!(ops.snapshot(OpKind::Get).count(), 0);
    }

    #[test]
    fn windowed_counter_keeps_lifetime_total() {
        let c = WindowedCounter::new();
        c.add(5);
        c.reset_window();
        c.add(2);
        assert_eq!(c.windowed(), 2);
        assert_eq!(c.lifetime(), 7);
    }
}
