//! Property test: merging per-shard histogram snapshots is exactly a
//! histogram of the union of their samples, regardless of how samples
//! are partitioned across shards.

use pesos_telemetry::Histogram;
use proptest::prelude::*;

proptest! {
    #[test]
    fn merge_of_shards_equals_histogram_of_union(
        // Values stay below 2^44 so the running sum cannot overflow a u64
        // (the atomic sum wraps on overflow while merge saturates; sums are
        // only exact while they fit, which any real latency total does).
        samples in proptest::collection::vec((0u64..(1 << 44), 0usize..4), 0..256),
        shards in 1usize..4,
    ) {
        let per_shard: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        let union = Histogram::new();
        for (value, pick) in &samples {
            if let Some(shard) = per_shard.get(pick % shards) {
                shard.record(*value);
            }
            union.record(*value);
        }
        let mut merged = pesos_telemetry::HistogramSnapshot::default();
        for shard in &per_shard {
            merged.merge(&shard.snapshot());
        }
        prop_assert_eq!(merged, union.snapshot());
    }

    #[test]
    fn quantiles_never_under_report(values in proptest::collection::vec(1u64..1_000_000, 1..128)) {
        let h = Histogram::new();
        for v in &values {
            h.record(*v);
        }
        let s = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // The reported quantile is a bucket ceiling, so it bounds the true
        // order statistic from above.
        let true_max = sorted.last().copied().unwrap_or(0);
        prop_assert!(s.quantile(1.0) >= true_max);
        prop_assert!(s.max() >= true_max);
        let mid = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
        prop_assert!(s.quantile(0.5).saturating_mul(2) >= mid);
    }
}
