//! Deterministic fault injection for simulated drives.
//!
//! The failover and migration test suites need drives that misbehave in
//! controlled, reproducible ways. A [`FaultPlan`] configures three
//! orthogonal fault classes, all driven by one seeded generator so a test
//! run is a pure function of its seed:
//!
//! * **Errors** — with probability `error_rate` a request is dropped
//!   *before* execution and answered with
//!   [`KineticError::DriveUnavailable`], modelling a transient transport or
//!   SoC failure. The engine state is untouched.
//! * **Torn replies** — with probability `torn_reply_rate` a request is
//!   executed *and then* answered with an error, modelling a reply lost on
//!   the wire after the drive applied the operation. This is the nasty
//!   case: the caller cannot distinguish it from a dropped request, so
//!   every recovery path must tolerate "failed" operations that actually
//!   happened.
//! * **Latency** — every injected decision can add a fixed service delay,
//!   modelling a degraded or overloaded drive.
//!
//! The injector sits at the drive's authenticated-frame entry points, after
//! the online check and before account lookup, so it covers every operation
//! the controller can issue (data path, range scans, export/import reads,
//! admin traffic) through one choke point.

use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for injected faults on one drive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's generator; equal seeds give equal fault
    /// sequences.
    pub seed: u64,
    /// Probability in `[0, 1]` that a request fails before execution.
    pub error_rate: f64,
    /// Probability in `[0, 1]` that a request executes but its reply is
    /// replaced with an error (a torn reply).
    pub torn_reply_rate: f64,
    /// Extra service latency charged to every request while the plan is
    /// active.
    pub latency: Option<Duration>,
}

impl FaultPlan {
    /// A plan that only drops requests, with the given probability.
    pub fn errors(seed: u64, error_rate: f64) -> Self {
        FaultPlan {
            seed,
            error_rate,
            torn_reply_rate: 0.0,
            latency: None,
        }
    }

    /// A plan that only tears replies, with the given probability.
    pub fn torn_replies(seed: u64, torn_reply_rate: f64) -> Self {
        FaultPlan {
            seed,
            error_rate: 0.0,
            torn_reply_rate,
            latency: None,
        }
    }
}

/// The outcome of one injection decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Execute the request normally.
    Pass,
    /// Fail the request without executing it.
    DropRequest,
    /// Execute the request, then report an error to the caller.
    TearReply,
}

/// A seeded fault source attached to a drive.
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    injected: Mutex<FaultCounts>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("injected", &*self.injected.lock())
            .finish()
    }
}

/// How many faults of each class an injector has produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Requests dropped before execution.
    pub dropped: u64,
    /// Replies torn after execution.
    pub torn: u64,
}

impl FaultInjector {
    /// Creates an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            rng: Mutex::with_rank(
                parking_lot::lock_order::FAULT_RNG,
                StdRng::seed_from_u64(plan.seed),
            ),
            injected: Mutex::with_rank(
                parking_lot::lock_order::FAULT_COUNTERS,
                FaultCounts::default(),
            ),
            plan,
        }
    }

    /// The active plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Counters for the faults produced so far.
    pub fn counts(&self) -> FaultCounts {
        *self.injected.lock()
    }

    /// Draws the next injection decision and sleeps for the configured
    /// latency. Decisions consume the generator in a fixed order (drop
    /// first, then tear), so a plan's fault sequence is reproducible
    /// whatever the rates are.
    pub fn decide(&self) -> FaultDecision {
        let (drop, tear) = {
            let mut rng = self.rng.lock();
            let drop = self.plan.error_rate > 0.0 && rng.gen_bool(self.plan.error_rate);
            let tear = self.plan.torn_reply_rate > 0.0 && rng.gen_bool(self.plan.torn_reply_rate);
            (drop, tear)
        };
        if let Some(latency) = self.plan.latency {
            std::thread::sleep(latency);
        }
        if drop {
            self.injected.lock().dropped += 1;
            FaultDecision::DropRequest
        } else if tear {
            self.injected.lock().torn += 1;
            FaultDecision::TearReply
        } else {
            FaultDecision::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan {
            seed: 7,
            error_rate: 0.3,
            torn_reply_rate: 0.2,
            latency: None,
        };
        let a = FaultInjector::new(plan);
        let b = FaultInjector::new(plan);
        let da: Vec<_> = (0..64).map(|_| a.decide()).collect();
        let db: Vec<_> = (0..64).map(|_| b.decide()).collect();
        assert_eq!(da, db);
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn zero_rates_always_pass() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 1,
            error_rate: 0.0,
            torn_reply_rate: 0.0,
            latency: None,
        });
        for _ in 0..32 {
            assert_eq!(inj.decide(), FaultDecision::Pass);
        }
        assert_eq!(inj.counts(), FaultCounts::default());
    }

    #[test]
    fn rates_produce_both_fault_classes() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 42,
            error_rate: 0.4,
            torn_reply_rate: 0.4,
            latency: None,
        });
        for _ in 0..256 {
            inj.decide();
        }
        let counts = inj.counts();
        assert!(counts.dropped > 0, "expected dropped requests");
        assert!(counts.torn > 0, "expected torn replies");
    }

    #[test]
    fn latency_is_charged() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 3,
            error_rate: 0.0,
            torn_reply_rate: 0.0,
            latency: Some(Duration::from_millis(5)),
        });
        let start = std::time::Instant::now();
        inj.decide();
        inj.decide();
        assert!(start.elapsed() >= Duration::from_millis(10));
    }
}
