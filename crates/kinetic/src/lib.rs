//! Kinetic Open Storage substrate.
//!
//! Pesos persists objects on Seagate Kinetic drives: hard disks with an
//! on-board SoC and an Ethernet interface that speak a key-value protocol
//! (Google Protocol Buffers over a length-prefixed framing, every message
//! authenticated with an HMAC keyed by a per-identity secret). The
//! controller takes exclusive ownership of its drives at bootstrap by
//! replacing all accounts with a single administrative identity, then issues
//! `PUT`/`GET`/`DELETE` operations against them over mutually authenticated
//! channels.
//!
//! This crate rebuilds that stack:
//!
//! * [`protocol`] — the message model, its protobuf-style encoding, and
//!   the vectored frame representation ([`VectoredEnvelope`]): scatter-
//!   gather chunks around a borrowed payload, sealed with one streaming
//!   frame HMAC, so the in-process exchange moves object payloads without
//!   copying or re-hashing them (the module docs carry the wire-format and
//!   security argument).
//! * [`engine`] — the key-value engine inside a drive (versioned entries,
//!   range scans, capacity accounting).
//! * [`backend`] — the timing model: an in-memory *simulator* backend
//!   (the paper's "Sim" configuration, mirroring the Java Kinetic
//!   simulator) and an *HDD* backend that charges seek/rotational/transfer
//!   latency and throttles to roughly 1 kIOP/s per spindle (the paper's
//!   "Disk" configuration).
//! * [`drive`] — a full drive: engine + backend + accounts/ACLs + device
//!   certificate + admin operations (security, setup/erase, getlog) + the
//!   peer-to-peer copy API.
//! * [`client`] — the client library used by the controller: session setup,
//!   per-message HMAC authentication, synchronous and asynchronous
//!   operations with a bounded ring of in-flight requests serviced by a
//!   thread pool.
//! * [`cluster`] — a named set of drives, as configured for one controller.
//! * [`fault`] — deterministic fault injection (dropped requests, torn
//!   replies, added latency) driven by a seeded generator, used by the
//!   failover and migration test suites.

pub mod backend;
pub mod client;
pub mod cluster;
pub mod drive;
pub mod engine;
pub mod error;
pub mod fault;
pub mod protocol;

pub use backend::{BackendKind, DriveBackend, HddModel};
pub use client::{AsyncHandle, ClientConfig, KineticClient};
pub use cluster::DriveSet;
pub use drive::{AccessControl, Account, DriveConfig, KineticDrive, Permission};
pub use engine::{DriveEngine, EngineStats, StoredEntry};
pub use error::KineticError;
pub use fault::{FaultCounts, FaultDecision, FaultInjector, FaultPlan};
pub use protocol::{
    AccountSpec, Command, CommandBody, Envelope, MessageType, Payload, ResponseStatus, StatusCode,
    VectoredCommand, VectoredEnvelope,
};
