//! The Kinetic wire protocol.
//!
//! Real Kinetic drives exchange protobuf `Message`s wrapped in a 9-byte
//! header; each message carries an HMAC computed over the command bytes with
//! the secret of the issuing identity. We reproduce the same structure with
//! the protobuf-style codec from `pesos-wire`:
//!
//! ```text
//! frame := u32 length || message
//! message := identity (1) | hmac (2) | command_bytes (3)
//! command := header (1) | body (2) | status (3)
//! header  := connection_id (1) | sequence (2) | message_type (3) | cluster_version (4) | ack_sequence (5)
//! body    := key (1) | value (2) | db_version (3) | new_version (4) | force (5)
//!          | range_start (6) | range_end (7) | max_returned (8) | p2p_target (9)
//!          | setup_new_cluster_version (10) | setup_erase (11) | log_type (12)
//!          | security_accounts (13, repeated nested)
//! ```
//!
//! Only the fields the Pesos controller actually uses are modelled, but the
//! decoder skips unknown fields so the format can grow.
//!
//! # Field presence
//!
//! `value`, `db_version`, `new_version` and `max_returned` are emitted
//! unconditionally, including when empty or zero. Earlier encoders dropped
//! empty fields, which silently changed meaning on decode: a zero-length
//! object payload became "absent", and a `GetKeyRange` with
//! `max_returned == 0` lost the field and had the drive substitute its
//! default page size. With unconditional emission, empty-but-present
//! round-trips and `max_returned == 0` travels as an explicit zero (the
//! drive honours it as "return no keys"). The remaining optional fields
//! (`key`, ranges, strings, booleans) keep presence-by-non-emptiness: for
//! them, empty and absent genuinely mean the same thing.
//!
//! # Vectored frames
//!
//! [`Command::encode_vectored`] splits the command encoding into three
//! chunks — everything before the payload bytes, the *borrowed* payload
//! ([`Payload`] reference-count bump, no copy), everything after — whose
//! concatenation is byte-identical to [`Command::encode`] (pinned by a
//! property test; the legacy monolithic encoder is kept untouched precisely
//! to serve as that oracle). [`Envelope::seal_vectored`] computes the frame
//! HMAC in one streaming pass over the chunk sequence with the session's
//! cached [`HmacKey`] midstates and yields a [`VectoredEnvelope`];
//! [`VectoredEnvelope::encode`] is a scatter-gather writer that gathers the
//! chunks straight into the output frame, so materializing a wire frame
//! copies the payload exactly once. On the in-process client↔drive path the
//! frame is never materialized at all: the envelope is handed to
//! [`crate::drive::KineticDrive::handle_envelope`] and the payload travels
//! from the sealing controller into the drive engine as one shared buffer.
//!
//! ## HMAC over the concatenation, folded verification
//!
//! The frame HMAC authenticates the concatenation of the chunks — the same
//! bytes the legacy path MACs, so tags and wire frames are byte-identical.
//! Because HMAC is `outer(inner(message))`, sealing records the inner
//! digest next to the tag, and an in-process receiver verifies with
//! [`HmacKey::verify_inner`]: one compression re-running the outer
//! transform under *its own* key schedule. That check proves the tag was
//! produced under the shared session secret and is bound to the inner
//! commitment. It deliberately does not re-hash the message: inside one
//! process the chunks and the digest travel in the same immutable structure
//! and cannot desynchronize, which is exactly the trusted-boundary story —
//! in a real deployment the re-hash happens on the drive's own processor,
//! not on the controller's. Any frame that crosses a *serialized* boundary
//! ([`Envelope::decode`] on received bytes) is still verified with the full
//! two-pass [`Envelope::open_with`], so tampered or wrong-secret byte
//! frames are rejected exactly as before.

use std::sync::Arc;

use pesos_crypto::hmac::HmacKey;
use pesos_crypto::Digest;
use pesos_wire::codec::{write_varint, FieldReader, FieldWriter};

use crate::error::KineticError;

/// Protobuf tag byte prelude for a length-delimited field.
fn length_delimited_tag(out: &mut Vec<u8>, field: u32, len: usize) {
    write_varint(out, ((field as u64) << 3) | 2);
    write_varint(out, len as u64);
}

/// Operation types (mirrors the Kinetic `MessageType` enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// Store a value.
    Put,
    /// Retrieve a value.
    Get,
    /// Delete a value.
    Delete,
    /// Retrieve a key range (used for recovery/scrubbing).
    GetKeyRange,
    /// No-op, used as a keep-alive and for latency probes.
    Noop,
    /// Replace the security configuration (accounts and ACLs).
    Security,
    /// Device setup: set cluster version and/or erase all data.
    Setup,
    /// Retrieve device information and statistics.
    GetLog,
    /// Push objects directly to a peer drive.
    PeerToPeerPush,
    /// Flush any volatile write-back state to stable media.
    Flush,
    /// A response message.
    Response,
}

impl MessageType {
    fn to_u64(self) -> u64 {
        match self {
            MessageType::Put => 1,
            MessageType::Get => 2,
            MessageType::Delete => 3,
            MessageType::GetKeyRange => 4,
            MessageType::Noop => 5,
            MessageType::Security => 6,
            MessageType::Setup => 7,
            MessageType::GetLog => 8,
            MessageType::PeerToPeerPush => 9,
            MessageType::Flush => 10,
            MessageType::Response => 11,
        }
    }

    fn from_u64(v: u64) -> Result<Self, KineticError> {
        Ok(match v {
            1 => MessageType::Put,
            2 => MessageType::Get,
            3 => MessageType::Delete,
            4 => MessageType::GetKeyRange,
            5 => MessageType::Noop,
            6 => MessageType::Security,
            7 => MessageType::Setup,
            8 => MessageType::GetLog,
            9 => MessageType::PeerToPeerPush,
            10 => MessageType::Flush,
            11 => MessageType::Response,
            other => {
                return Err(KineticError::Malformed(format!(
                    "unknown message type {other}"
                )))
            }
        })
    }
}

/// Status codes carried in responses (subset of the Kinetic enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatusCode {
    /// Operation succeeded.
    Success,
    /// Key not found.
    NotFound,
    /// dbVersion precondition failed.
    VersionMismatch,
    /// The identity is not allowed to perform the operation.
    NotAuthorized,
    /// The message HMAC did not verify.
    HmacFailure,
    /// The request was malformed.
    InvalidRequest,
    /// The drive did not attempt the operation (offline, busy, ...).
    NotAttempted,
    /// The drive is out of space.
    NoSpace,
    /// An internal drive error occurred.
    InternalError,
}

impl StatusCode {
    fn to_u64(self) -> u64 {
        match self {
            StatusCode::Success => 1,
            StatusCode::NotFound => 2,
            StatusCode::VersionMismatch => 3,
            StatusCode::NotAuthorized => 4,
            StatusCode::HmacFailure => 5,
            StatusCode::InvalidRequest => 6,
            StatusCode::NotAttempted => 7,
            StatusCode::NoSpace => 8,
            StatusCode::InternalError => 9,
        }
    }

    fn from_u64(v: u64) -> Result<Self, KineticError> {
        Ok(match v {
            1 => StatusCode::Success,
            2 => StatusCode::NotFound,
            3 => StatusCode::VersionMismatch,
            4 => StatusCode::NotAuthorized,
            5 => StatusCode::HmacFailure,
            6 => StatusCode::InvalidRequest,
            7 => StatusCode::NotAttempted,
            8 => StatusCode::NoSpace,
            9 => StatusCode::InternalError,
            other => {
                return Err(KineticError::Malformed(format!(
                    "unknown status code {other}"
                )))
            }
        })
    }

    /// True for success.
    pub fn is_success(self) -> bool {
        self == StatusCode::Success
    }
}

/// A security account definition carried in a `Security` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountSpec {
    /// Numeric identity.
    pub identity: i64,
    /// Shared HMAC secret.
    pub secret: Vec<u8>,
    /// Permission bits (see [`crate::drive::Permission`]).
    pub permissions: u32,
}

/// A reference-counted, immutable value payload.
///
/// Replication fans one object write out to several drives; sharing the
/// payload bytes through an `Arc` means enqueueing a command for each
/// replica is a reference-count bump, not a copy. The only copies left on
/// the write path are the per-replica wire-frame encode/decode, which model
/// the network boundary the cost model charges anyway.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// Creates an empty payload.
    pub fn new() -> Self {
        Payload::default()
    }

    /// The shared underlying buffer.
    pub fn as_arc(&self) -> &Arc<[u8]> {
        &self.0
    }

    /// Copies the payload into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload(Arc::from(bytes))
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload(Arc::from(bytes))
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(bytes: &[u8; N]) -> Self {
        Payload(Arc::from(&bytes[..]))
    }
}

impl From<Arc<[u8]>> for Payload {
    fn from(bytes: Arc<[u8]>) -> Self {
        Payload(bytes)
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.0 == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        *self.0 == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        *self.0 == other[..]
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload({} bytes)", self.0.len())
    }
}

/// The body of a command; which fields are meaningful depends on the type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommandBody {
    /// Object key.
    pub key: Vec<u8>,
    /// Object value (PUT, responses to GET).
    pub value: Payload,
    /// Expected stored version for compare-and-swap semantics.
    pub db_version: Vec<u8>,
    /// New version to store.
    pub new_version: Vec<u8>,
    /// Ignore the version precondition.
    pub force: bool,
    /// Range scan start key (inclusive).
    pub range_start: Vec<u8>,
    /// Range scan end key (inclusive).
    pub range_end: Vec<u8>,
    /// Maximum number of keys returned by a range scan.
    pub max_returned: u32,
    /// Target drive identifier for P2P push.
    pub p2p_target: String,
    /// New cluster version for `Setup`.
    pub setup_new_cluster_version: Option<u64>,
    /// Request an instant secure erase in `Setup`.
    pub setup_erase: bool,
    /// Log type requested by `GetLog` (free-form label).
    pub log_type: String,
    /// Account definitions for `Security`.
    pub security_accounts: Vec<AccountSpec>,
}

/// A protocol command (request or response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Connection identifier assigned by the drive at handshake time.
    pub connection_id: u64,
    /// Monotonically increasing per-connection sequence number.
    pub sequence: u64,
    /// The operation.
    pub message_type: MessageType,
    /// The cluster version the issuer believes the drive is at.
    pub cluster_version: u64,
    /// For responses: the sequence number being acknowledged.
    pub ack_sequence: u64,
    /// Operation payload.
    pub body: CommandBody,
    /// Response status (requests use `Success`/empty message).
    pub status: ResponseStatus,
}

/// Status portion of a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseStatus {
    /// The code.
    pub code: StatusCode,
    /// Optional detail message.
    pub message: String,
}

impl Default for ResponseStatus {
    fn default() -> Self {
        ResponseStatus {
            code: StatusCode::Success,
            message: String::new(),
        }
    }
}

impl Command {
    /// Creates a request command.
    pub fn request(message_type: MessageType) -> Self {
        Command {
            connection_id: 0,
            sequence: 0,
            message_type,
            cluster_version: 0,
            ack_sequence: 0,
            body: CommandBody::default(),
            status: ResponseStatus::default(),
        }
    }

    /// Creates a response acknowledging `request` with the given status.
    pub fn response_to(request: &Command, code: StatusCode, message: impl Into<String>) -> Self {
        Command {
            connection_id: request.connection_id,
            sequence: 0,
            message_type: MessageType::Response,
            cluster_version: request.cluster_version,
            ack_sequence: request.sequence,
            body: CommandBody::default(),
            status: ResponseStatus {
                code,
                message: message.into(),
            },
        }
    }

    /// Encodes the command (without the outer authenticated envelope).
    pub fn encode(&self) -> Vec<u8> {
        let mut header = FieldWriter::new();
        header
            .uint64(1, self.connection_id)
            .uint64(2, self.sequence)
            .uint64(3, self.message_type.to_u64())
            .uint64(4, self.cluster_version)
            .uint64(5, self.ack_sequence);

        let mut body = FieldWriter::new();
        let b = &self.body;
        if !b.key.is_empty() {
            body.bytes(1, &b.key);
        }
        // value, db_version, new_version and max_returned are emitted even
        // when empty/zero: dropping them would turn a present-but-empty
        // payload into "absent" and a zero page limit into the drive's
        // default page size (see the module docs on field presence).
        body.bytes(2, &b.value);
        body.bytes(3, &b.db_version);
        body.bytes(4, &b.new_version);
        if b.force {
            body.boolean(5, true);
        }
        if !b.range_start.is_empty() {
            body.bytes(6, &b.range_start);
        }
        if !b.range_end.is_empty() {
            body.bytes(7, &b.range_end);
        }
        body.uint64(8, b.max_returned as u64);
        if !b.p2p_target.is_empty() {
            body.string(9, &b.p2p_target);
        }
        if let Some(v) = b.setup_new_cluster_version {
            body.uint64(10, v);
        }
        if b.setup_erase {
            body.boolean(11, true);
        }
        if !b.log_type.is_empty() {
            body.string(12, &b.log_type);
        }
        for account in &b.security_accounts {
            let mut acc = FieldWriter::new();
            acc.sint64(1, account.identity)
                .bytes(2, &account.secret)
                .uint64(3, account.permissions as u64);
            body.message(13, &acc);
        }

        let mut status = FieldWriter::new();
        status.uint64(1, self.status.code.to_u64());
        if !self.status.message.is_empty() {
            status.string(2, &self.status.message);
        }

        let mut command = FieldWriter::new();
        command
            .message(1, &header)
            .message(2, &body)
            .message(3, &status);
        command.finish()
    }

    /// Decodes a command from its encoding.
    pub fn decode(data: &[u8]) -> Result<Self, KineticError> {
        let malformed = |msg: &str| KineticError::Malformed(msg.to_string());
        let fields = FieldReader::new(data)
            .collect_fields()
            .map_err(|e| KineticError::Malformed(e.to_string()))?;

        let mut cmd = Command::request(MessageType::Noop);
        let mut saw_header = false;

        for field in fields {
            match field.number {
                1 => {
                    saw_header = true;
                    for f in FieldReader::new(field.data)
                        .collect_fields()
                        .map_err(|e| KineticError::Malformed(e.to_string()))?
                    {
                        match f.number {
                            1 => cmd.connection_id = f.value,
                            2 => cmd.sequence = f.value,
                            3 => cmd.message_type = MessageType::from_u64(f.value)?,
                            4 => cmd.cluster_version = f.value,
                            5 => cmd.ack_sequence = f.value,
                            _ => {}
                        }
                    }
                }
                2 => {
                    for f in FieldReader::new(field.data)
                        .collect_fields()
                        .map_err(|e| KineticError::Malformed(e.to_string()))?
                    {
                        match f.number {
                            1 => cmd.body.key = f.data.to_vec(),
                            2 => cmd.body.value = f.data.into(),
                            3 => cmd.body.db_version = f.data.to_vec(),
                            4 => cmd.body.new_version = f.data.to_vec(),
                            5 => cmd.body.force = f.as_bool(),
                            6 => cmd.body.range_start = f.data.to_vec(),
                            7 => cmd.body.range_end = f.data.to_vec(),
                            8 => cmd.body.max_returned = f.value as u32,
                            9 => {
                                cmd.body.p2p_target = f
                                    .as_str()
                                    .map_err(|_| malformed("p2p target not UTF-8"))?
                                    .to_string()
                            }
                            10 => cmd.body.setup_new_cluster_version = Some(f.value),
                            11 => cmd.body.setup_erase = f.as_bool(),
                            12 => {
                                cmd.body.log_type = f
                                    .as_str()
                                    .map_err(|_| malformed("log type not UTF-8"))?
                                    .to_string()
                            }
                            13 => {
                                let mut spec = AccountSpec {
                                    identity: 0,
                                    secret: Vec::new(),
                                    permissions: 0,
                                };
                                for af in FieldReader::new(f.data)
                                    .collect_fields()
                                    .map_err(|e| KineticError::Malformed(e.to_string()))?
                                {
                                    match af.number {
                                        1 => spec.identity = af.as_sint64(),
                                        2 => spec.secret = af.data.to_vec(),
                                        3 => spec.permissions = af.value as u32,
                                        _ => {}
                                    }
                                }
                                cmd.body.security_accounts.push(spec);
                            }
                            _ => {}
                        }
                    }
                }
                3 => {
                    for f in FieldReader::new(field.data)
                        .collect_fields()
                        .map_err(|e| KineticError::Malformed(e.to_string()))?
                    {
                        match f.number {
                            1 => cmd.status.code = StatusCode::from_u64(f.value)?,
                            2 => {
                                cmd.status.message = f
                                    .as_str()
                                    .map_err(|_| malformed("status message not UTF-8"))?
                                    .to_string()
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }

        if !saw_header {
            return Err(malformed("missing command header"));
        }
        Ok(cmd)
    }

    /// Encodes the command as scatter-gather chunks: everything before the
    /// payload bytes, the payload itself as a *borrowed* [`Payload`]
    /// (reference-count bump, no copy), and everything after.
    ///
    /// The concatenation `head || value || tail` is byte-identical to
    /// [`Command::encode`] — the legacy monolithic encoder is deliberately
    /// kept as an independent implementation so the property tests can use
    /// it as the equivalence oracle. This method is written against the raw
    /// varint primitives rather than sharing helpers with `encode`, so a
    /// bug cannot hide in code common to both.
    pub fn encode_vectored(&self) -> VectoredCommand {
        let mut header = FieldWriter::new();
        header
            .uint64(1, self.connection_id)
            .uint64(2, self.sequence)
            .uint64(3, self.message_type.to_u64())
            .uint64(4, self.cluster_version)
            .uint64(5, self.ack_sequence);

        let b = &self.body;
        // Body fields that precede the value (field 2).
        let mut body_head = FieldWriter::new();
        if !b.key.is_empty() {
            body_head.bytes(1, &b.key);
        }
        // Body fields that follow the value, in field order (the same
        // unconditional-presence rules as `encode`; see the module docs).
        let mut body_tail = FieldWriter::new();
        body_tail.bytes(3, &b.db_version).bytes(4, &b.new_version);
        if b.force {
            body_tail.boolean(5, true);
        }
        if !b.range_start.is_empty() {
            body_tail.bytes(6, &b.range_start);
        }
        if !b.range_end.is_empty() {
            body_tail.bytes(7, &b.range_end);
        }
        body_tail.uint64(8, b.max_returned as u64);
        if !b.p2p_target.is_empty() {
            body_tail.string(9, &b.p2p_target);
        }
        if let Some(v) = b.setup_new_cluster_version {
            body_tail.uint64(10, v);
        }
        if b.setup_erase {
            body_tail.boolean(11, true);
        }
        if !b.log_type.is_empty() {
            body_tail.string(12, &b.log_type);
        }
        for account in &b.security_accounts {
            let mut acc = FieldWriter::new();
            acc.sint64(1, account.identity)
                .bytes(2, &account.secret)
                .uint64(3, account.permissions as u64);
            body_tail.message(13, &acc);
        }

        let mut status = FieldWriter::new();
        status.uint64(1, self.status.code.to_u64());
        if !self.status.message.is_empty() {
            status.string(2, &self.status.message);
        }

        // The value field's own tag and length prefix sit at the end of the
        // head chunk, so the borrowed payload slice is the entire middle
        // chunk. The body message length covers head fields, the value
        // field (tag + length prefix + bytes) and tail fields; it is
        // computed arithmetically — nothing here touches the payload bytes.
        let mut value_prefix = Vec::with_capacity(8);
        length_delimited_tag(&mut value_prefix, 2, b.value.len());
        let body_len = body_head.len() + value_prefix.len() + b.value.len() + body_tail.len();

        let mut head = Vec::with_capacity(header.len() + body_head.len() + value_prefix.len() + 16);
        length_delimited_tag(&mut head, 1, header.len());
        head.extend_from_slice(header.as_bytes());
        length_delimited_tag(&mut head, 2, body_len);
        head.extend_from_slice(body_head.as_bytes());
        head.extend_from_slice(&value_prefix);

        let mut tail = body_tail.finish();
        let status_bytes = status.finish();
        length_delimited_tag(&mut tail, 3, status_bytes.len());
        tail.extend_from_slice(&status_bytes);

        VectoredCommand {
            head,
            value: b.value.clone(),
            tail,
        }
    }
}

/// A command encoded as scatter-gather chunks.
///
/// `head || value || tail` is the exact byte sequence [`Command::encode`]
/// produces; the `value` chunk is the shared [`Payload`] buffer, never
/// copied. Produced by [`Command::encode_vectored`].
#[derive(Debug, Clone)]
pub struct VectoredCommand {
    /// Header message, body tag and length, body fields before the value,
    /// and the value field's tag and length prefix.
    head: Vec<u8>,
    /// The payload bytes (field 2 of the body), shared by reference count.
    value: Payload,
    /// Body fields after the value, and the status message.
    tail: Vec<u8>,
}

impl VectoredCommand {
    /// The chunk sequence, in frame order.
    pub fn chunks(&self) -> [&[u8]; 3] {
        [&self.head, &self.value, &self.tail]
    }

    /// Total encoded length of the command.
    pub fn encoded_len(&self) -> usize {
        self.head.len() + self.value.len() + self.tail.len()
    }

    /// Materializes the contiguous command encoding (one copy of every
    /// chunk, including the payload). Only needed when command bytes must
    /// actually leave the process; equality with [`Command::encode`] is
    /// pinned by property test.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        for chunk in self.chunks() {
            out.extend_from_slice(chunk);
        }
        out
    }
}

/// The authenticated envelope around a command: identity + HMAC + bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The numeric identity of the issuer.
    pub identity: i64,
    /// HMAC-SHA256 over the command bytes with the identity's secret.
    pub hmac: Vec<u8>,
    /// The encoded command.
    pub command_bytes: Vec<u8>,
}

impl Envelope {
    /// Wraps and authenticates a command.
    ///
    /// Runs the full HMAC key schedule for `secret`; sessions holding a
    /// precomputed [`HmacKey`] should use [`Envelope::seal_with`], which
    /// produces byte-identical envelopes without redoing the schedule.
    pub fn seal(identity: i64, secret: &[u8], command: &Command) -> Self {
        Envelope::seal_with(identity, &HmacKey::new(secret), command)
    }

    /// Wraps and authenticates a command with a precomputed key schedule.
    pub fn seal_with(identity: i64, key: &HmacKey, command: &Command) -> Self {
        let command_bytes = command.encode();
        let hmac = key.mac(&command_bytes).to_vec();
        Envelope {
            identity,
            hmac,
            command_bytes,
        }
    }

    /// Wraps and authenticates a command as a [`VectoredEnvelope`]: the
    /// frame HMAC is computed in one streaming pass over the vectored
    /// chunk sequence (cached `key` midstates, payload borrowed, no
    /// intermediate `command_bytes` buffer), folding the legacy path's
    /// separate encode and MAC passes — and, via the recorded inner digest,
    /// the in-process receiver's re-hash — into that single pass.
    pub fn seal_vectored(identity: i64, key: &HmacKey, command: Command) -> VectoredEnvelope {
        let frame = command.encode_vectored();
        let mut hasher = key.hasher();
        for chunk in frame.chunks() {
            hasher.update(chunk);
        }
        let (inner, hmac) = hasher.finalize_with_inner();
        VectoredEnvelope {
            identity,
            hmac,
            inner,
            frame,
            command,
        }
    }

    /// Verifies the HMAC with `secret` and decodes the inner command.
    pub fn open(&self, secret: &[u8]) -> Result<Command, KineticError> {
        self.open_with(&HmacKey::new(secret))
    }

    /// Verifies the HMAC with a precomputed key schedule and decodes the
    /// inner command.
    pub fn open_with(&self, key: &HmacKey) -> Result<Command, KineticError> {
        if !key.verify(&self.command_bytes, &self.hmac) {
            return Err(KineticError::AuthenticationFailed);
        }
        Command::decode(&self.command_bytes)
    }

    /// Encodes the envelope for transmission.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = FieldWriter::new();
        w.sint64(1, self.identity)
            .bytes(2, &self.hmac)
            .bytes(3, &self.command_bytes);
        w.finish()
    }

    /// Decodes an envelope.
    pub fn decode(data: &[u8]) -> Result<Self, KineticError> {
        let fields = FieldReader::new(data)
            .collect_fields()
            .map_err(|e| KineticError::Malformed(e.to_string()))?;
        let mut identity = None;
        let mut hmac = Vec::new();
        let mut command_bytes = Vec::new();
        for f in fields {
            match f.number {
                1 => identity = Some(f.as_sint64()),
                2 => hmac = f.data.to_vec(),
                3 => command_bytes = f.data.to_vec(),
                _ => {}
            }
        }
        let identity =
            identity.ok_or_else(|| KineticError::Malformed("missing identity".into()))?;
        if command_bytes.is_empty() {
            return Err(KineticError::Malformed("missing command bytes".into()));
        }
        Ok(Envelope {
            identity,
            hmac,
            command_bytes,
        })
    }
}

/// An authenticated frame in scatter-gather form: the in-process
/// representation of a wire frame.
///
/// Created by [`Envelope::seal_vectored`]. The command travels alongside
/// its encoded chunks (the payload is the same shared [`Payload`] buffer in
/// both), so the in-process receiver neither re-decodes nor copies
/// anything. [`VectoredEnvelope::encode`] materializes the byte-identical
/// legacy frame when bytes are actually needed. See the module docs for the
/// folded-verification security argument and its trust boundary.
#[derive(Debug, Clone)]
pub struct VectoredEnvelope {
    identity: i64,
    /// HMAC-SHA256 over `head || value || tail` — the same tag the legacy
    /// [`Envelope::seal_with`] computes over `command_bytes`.
    hmac: Digest,
    /// The inner digest of that HMAC (`sha256(ipad-block || frame bytes)`),
    /// recorded at seal time so an in-process receiver can verify the tag
    /// with one outer compression ([`HmacKey::verify_inner`]).
    inner: Digest,
    frame: VectoredCommand,
    command: Command,
}

impl VectoredEnvelope {
    /// The numeric identity of the issuer.
    pub fn identity(&self) -> i64 {
        self.identity
    }

    /// The frame authentication tag.
    pub fn hmac(&self) -> &Digest {
        &self.hmac
    }

    /// The sealed command.
    pub fn command(&self) -> &Command {
        &self.command
    }

    /// Consumes the envelope, returning the sealed command.
    pub fn into_command(self) -> Command {
        self.command
    }

    /// Verifies the frame tag against `key` without re-hashing the frame:
    /// one compression re-runs the outer HMAC transform over the recorded
    /// inner digest. Sound only because the chunks and the digest travel
    /// together inside one process (module docs); serialized frames must go
    /// through [`Envelope::open_with`].
    pub fn verified_by(&self, key: &HmacKey) -> bool {
        key.verify_inner(&self.inner, &self.hmac)
    }

    /// The scatter-gather frame writer: materializes the wire frame by
    /// gathering identity, tag and the command chunks straight into one
    /// output buffer — the payload is copied exactly once, here, and
    /// nowhere else on the encode path. Byte-identical to
    /// `Envelope::seal_with(..).encode()` (property-tested).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = FieldWriter::with_capacity(self.frame.encoded_len() + 48);
        w.sint64(1, self.identity)
            .bytes(2, &self.hmac)
            .bytes_from_parts(3, &self.frame.chunks());
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_command() -> Command {
        let mut cmd = Command::request(MessageType::Put);
        cmd.connection_id = 77;
        cmd.sequence = 5;
        cmd.cluster_version = 2;
        cmd.body.key = b"object/alpha".to_vec();
        cmd.body.value = vec![1, 2, 3, 4, 5].into();
        cmd.body.new_version = b"v2".to_vec();
        cmd.body.db_version = b"v1".to_vec();
        cmd.body.force = false;
        cmd
    }

    #[test]
    fn command_round_trip() {
        let cmd = sample_command();
        let decoded = Command::decode(&cmd.encode()).unwrap();
        assert_eq!(decoded, cmd);
    }

    #[test]
    fn response_round_trip() {
        let req = sample_command();
        let mut resp = Command::response_to(&req, StatusCode::VersionMismatch, "stored v3");
        resp.body.value = b"payload".into();
        let decoded = Command::decode(&resp.encode()).unwrap();
        assert_eq!(decoded.message_type, MessageType::Response);
        assert_eq!(decoded.ack_sequence, 5);
        assert_eq!(decoded.status.code, StatusCode::VersionMismatch);
        assert_eq!(decoded.status.message, "stored v3");
        assert_eq!(decoded.body.value, b"payload");
    }

    #[test]
    fn security_command_round_trip() {
        let mut cmd = Command::request(MessageType::Security);
        cmd.body.security_accounts = vec![
            AccountSpec {
                identity: 1,
                secret: b"admin-secret".to_vec(),
                permissions: 0xff,
            },
            AccountSpec {
                identity: -42,
                secret: b"other".to_vec(),
                permissions: 0x3,
            },
        ];
        let decoded = Command::decode(&cmd.encode()).unwrap();
        assert_eq!(decoded.body.security_accounts, cmd.body.security_accounts);
    }

    #[test]
    fn setup_and_getlog_round_trip() {
        let mut cmd = Command::request(MessageType::Setup);
        cmd.body.setup_new_cluster_version = Some(9);
        cmd.body.setup_erase = true;
        let decoded = Command::decode(&cmd.encode()).unwrap();
        assert_eq!(decoded.body.setup_new_cluster_version, Some(9));
        assert!(decoded.body.setup_erase);

        let mut log = Command::request(MessageType::GetLog);
        log.body.log_type = "utilization".to_string();
        let decoded = Command::decode(&log.encode()).unwrap();
        assert_eq!(decoded.body.log_type, "utilization");
    }

    #[test]
    fn malformed_command_rejected() {
        assert!(Command::decode(b"not a command").is_err());
        assert!(Command::decode(&[]).is_err());
    }

    #[test]
    fn envelope_authentication() {
        let cmd = sample_command();
        let env = Envelope::seal(1, b"secret", &cmd);
        let opened = env.open(b"secret").unwrap();
        assert_eq!(opened, cmd);
        assert_eq!(env.open(b"wrong"), Err(KineticError::AuthenticationFailed));
    }

    #[test]
    fn cached_key_envelopes_match_secret_envelopes() {
        // The session layer seals and opens through a cached HmacKey; the
        // wire format must stay byte-identical to the from-secret path.
        let cmd = sample_command();
        let key = HmacKey::new(b"secret");
        let via_secret = Envelope::seal(1, b"secret", &cmd);
        let via_key = Envelope::seal_with(1, &key, &cmd);
        assert_eq!(via_key, via_secret);
        assert_eq!(via_key.encode(), via_secret.encode());
        assert_eq!(via_secret.open_with(&key).unwrap(), cmd);
        assert_eq!(via_key.open(b"secret").unwrap(), cmd);
        assert_eq!(
            via_key.open_with(&HmacKey::new(b"wrong")),
            Err(KineticError::AuthenticationFailed)
        );
    }

    #[test]
    fn envelope_tamper_detected() {
        let cmd = sample_command();
        let mut env = Envelope::seal(1, b"secret", &cmd);
        env.command_bytes[0] ^= 0x1;
        assert_eq!(env.open(b"secret"), Err(KineticError::AuthenticationFailed));
    }

    #[test]
    fn empty_value_and_versions_round_trip_as_present() {
        // A zero-length payload (or version field) must stay a zero-length
        // payload across encode/decode, not silently become "absent": the
        // fields are emitted unconditionally.
        let mut cmd = Command::request(MessageType::Put);
        cmd.body.key = b"zero/byte".to_vec();
        cmd.body.value = Payload::new();
        cmd.body.db_version = Vec::new();
        cmd.body.new_version = Vec::new();
        let encoded = cmd.encode();
        let decoded = Command::decode(&encoded).unwrap();
        assert_eq!(decoded, cmd);
        assert!(decoded.body.value.is_empty());
        // The body message really carries the three fields explicitly.
        let fields = FieldReader::new(&encoded).collect_fields().unwrap();
        let body = fields.iter().find(|f| f.number == 2).unwrap();
        let body_fields: Vec<u32> = FieldReader::new(body.data)
            .collect_fields()
            .unwrap()
            .iter()
            .map(|f| f.number)
            .collect();
        for field in [2u32, 3, 4] {
            assert!(body_fields.contains(&field), "field {field} dropped");
        }
    }

    #[test]
    fn max_returned_zero_is_encoded_explicitly() {
        let mut cmd = Command::request(MessageType::GetKeyRange);
        cmd.body.range_start = b"a".to_vec();
        cmd.body.range_end = b"z".to_vec();
        cmd.body.max_returned = 0;
        let decoded = Command::decode(&cmd.encode()).unwrap();
        assert_eq!(decoded.body.max_returned, 0);
        assert_eq!(decoded, cmd);
    }

    fn command_shapes() -> Vec<Command> {
        let mut shapes = vec![sample_command(), Command::request(MessageType::Noop)];
        let mut zero = Command::request(MessageType::Put);
        zero.body.key = b"zero".to_vec();
        shapes.push(zero);
        let mut range = Command::request(MessageType::GetKeyRange);
        range.body.range_start = b"a/".to_vec();
        range.body.range_end = b"a/~".to_vec();
        range.body.max_returned = 0;
        shapes.push(range);
        let mut security = Command::request(MessageType::Security);
        security.body.security_accounts = vec![AccountSpec {
            identity: -3,
            secret: b"s".to_vec(),
            permissions: 0x7,
        }];
        shapes.push(security);
        let mut setup = Command::request(MessageType::Setup);
        setup.body.setup_new_cluster_version = Some(11);
        setup.body.setup_erase = true;
        shapes.push(setup);
        let mut resp = Command::response_to(&sample_command(), StatusCode::NotFound, "missing");
        resp.body.value = b"payload".into();
        shapes.push(resp);
        shapes
    }

    #[test]
    fn vectored_encode_matches_legacy_encode() {
        for cmd in command_shapes() {
            let legacy = cmd.encode();
            let vectored = cmd.encode_vectored();
            assert_eq!(vectored.to_bytes(), legacy, "{:?}", cmd.message_type);
            assert_eq!(vectored.encoded_len(), legacy.len());
            // The middle chunk is the payload buffer itself, not a copy.
            assert!(Arc::ptr_eq(
                cmd.body.value.as_arc(),
                vectored.value.as_arc()
            ));
        }
    }

    #[test]
    fn vectored_envelope_matches_legacy_envelope() {
        let key = HmacKey::new(b"secret");
        for cmd in command_shapes() {
            let legacy = Envelope::seal_with(1, &key, &cmd);
            let vectored = Envelope::seal_vectored(1, &key, cmd.clone());
            // Same tag, byte-identical materialized frame.
            assert_eq!(vectored.hmac()[..], legacy.hmac[..]);
            assert_eq!(vectored.encode(), legacy.encode());
            // The folded verification accepts the right key and rejects a
            // wrong one.
            assert!(vectored.verified_by(&key));
            assert!(!vectored.verified_by(&HmacKey::new(b"wrong")));
            // The carried command is the sealed command.
            assert_eq!(vectored.command(), &cmd);
            assert_eq!(vectored.into_command(), cmd);
        }
    }

    #[test]
    fn vectored_frame_decodes_through_the_legacy_path() {
        let key = HmacKey::new(b"secret");
        let cmd = sample_command();
        let frame = Envelope::seal_vectored(7, &key, cmd.clone()).encode();
        let envelope = Envelope::decode(&frame).unwrap();
        assert_eq!(envelope.identity, 7);
        assert_eq!(envelope.open_with(&key).unwrap(), cmd);
    }

    #[test]
    fn envelope_encoding_round_trip() {
        let cmd = sample_command();
        let env = Envelope::seal(7, b"s", &cmd);
        let decoded = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(decoded, env);
        assert!(Envelope::decode(b"junk").is_err());
    }

    #[test]
    fn message_type_and_status_exhaustive() {
        for t in [
            MessageType::Put,
            MessageType::Get,
            MessageType::Delete,
            MessageType::GetKeyRange,
            MessageType::Noop,
            MessageType::Security,
            MessageType::Setup,
            MessageType::GetLog,
            MessageType::PeerToPeerPush,
            MessageType::Flush,
            MessageType::Response,
        ] {
            assert_eq!(MessageType::from_u64(t.to_u64()).unwrap(), t);
        }
        assert!(MessageType::from_u64(99).is_err());
        for s in [
            StatusCode::Success,
            StatusCode::NotFound,
            StatusCode::VersionMismatch,
            StatusCode::NotAuthorized,
            StatusCode::HmacFailure,
            StatusCode::InvalidRequest,
            StatusCode::NotAttempted,
            StatusCode::NoSpace,
            StatusCode::InternalError,
        ] {
            assert_eq!(StatusCode::from_u64(s.to_u64()).unwrap(), s);
        }
        assert!(StatusCode::from_u64(99).is_err());
        assert!(StatusCode::Success.is_success());
        assert!(!StatusCode::NotFound.is_success());
    }
}
