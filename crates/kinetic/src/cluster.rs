//! A named set of Kinetic drives assigned to one Pesos controller.
//!
//! The paper's controller uses a static configuration of drives (dynamic
//! membership via consistent hashing is listed as future work); the
//! [`DriveSet`] mirrors that: an ordered list of drives addressable by index
//! (for the replication placement function) and by identifier, plus helpers
//! for cluster-wide administration and the drive-to-drive copy API.

use std::sync::Arc;

use crate::drive::KineticDrive;
use crate::error::KineticError;

/// An ordered collection of drives.
#[derive(Clone, Default)]
pub struct DriveSet {
    drives: Vec<Arc<KineticDrive>>,
}

impl DriveSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        DriveSet { drives: Vec::new() }
    }

    /// Creates a set from existing drives.
    pub fn from_drives(drives: Vec<Arc<KineticDrive>>) -> Self {
        DriveSet { drives }
    }

    /// Adds a drive to the end of the ordered list.
    pub fn add(&mut self, drive: Arc<KineticDrive>) {
        self.drives.push(drive);
    }

    /// Number of drives.
    pub fn len(&self) -> usize {
        self.drives.len()
    }

    /// True if the set holds no drives.
    pub fn is_empty(&self) -> bool {
        self.drives.is_empty()
    }

    /// Returns the drive at `index`.
    pub fn get(&self, index: usize) -> Option<&Arc<KineticDrive>> {
        self.drives.get(index)
    }

    /// Looks a drive up by identifier.
    pub fn by_id(&self, id: &str) -> Option<&Arc<KineticDrive>> {
        self.drives.iter().find(|d| d.id() == id)
    }

    /// Iterates over the drives in configuration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<KineticDrive>> {
        self.drives.iter()
    }

    /// Identifiers of all drives, in order.
    pub fn ids(&self) -> Vec<String> {
        self.drives.iter().map(|d| d.id().to_string()).collect()
    }

    /// Indices of drives that are currently reachable.
    pub fn online_indices(&self) -> Vec<usize> {
        self.drives
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_online())
            .map(|(i, _)| i)
            .collect()
    }

    /// Copies `keys` from the drive `source_id` directly to `target_id`
    /// using the P2P push API.
    pub fn p2p_push(
        &self,
        source_id: &str,
        target_id: &str,
        keys: &[Vec<u8>],
    ) -> Result<usize, KineticError> {
        let source = self
            .by_id(source_id)
            .ok_or_else(|| KineticError::DriveUnavailable(source_id.to_string()))?;
        let target = self
            .by_id(target_id)
            .ok_or_else(|| KineticError::DriveUnavailable(target_id.to_string()))?;
        source.push_to(target, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::DriveConfig;

    fn set(n: usize) -> DriveSet {
        let drives = (0..n)
            .map(|i| {
                Arc::new(KineticDrive::new(DriveConfig::simulator(format!(
                    "kd-{i:02}"
                ))))
            })
            .collect();
        DriveSet::from_drives(drives)
    }

    #[test]
    fn construction_and_lookup() {
        let mut s = set(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.get(1).unwrap().id(), "kd-01");
        assert!(s.by_id("kd-02").is_some());
        assert!(s.by_id("missing").is_none());
        assert_eq!(s.ids(), vec!["kd-00", "kd-01", "kd-02"]);

        s.add(Arc::new(KineticDrive::new(DriveConfig::simulator("kd-99"))));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn online_tracking() {
        let s = set(3);
        assert_eq!(s.online_indices(), vec![0, 1, 2]);
        s.get(1).unwrap().set_online(false);
        assert_eq!(s.online_indices(), vec![0, 2]);
    }

    #[test]
    fn p2p_push_between_members() {
        let s = set(2);
        let source = s.get(0).unwrap();
        // Store directly through the engine-peek path via a client-less put.
        source.execute(
            &crate::drive::Account::new(1, b"asdfasdf".to_vec(), crate::drive::Permission::all()),
            &{
                let mut c = crate::protocol::Command::request(crate::protocol::MessageType::Put);
                c.body.key = b"obj".to_vec();
                c.body.value = b"data".into();
                c.body.new_version = b"1".to_vec();
                c
            },
        );
        let copied = s.p2p_push("kd-00", "kd-01", &[b"obj".to_vec()]).unwrap();
        assert_eq!(copied, 1);
        assert!(s.get(1).unwrap().peek(b"obj").is_some());
        assert!(s.p2p_push("nope", "kd-01", &[]).is_err());
    }

    #[test]
    fn empty_set_behaviour() {
        let s = DriveSet::new();
        assert!(s.is_empty());
        assert!(s.get(0).is_none());
        assert!(s.online_indices().is_empty());
    }
}
