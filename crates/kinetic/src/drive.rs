//! A complete simulated Kinetic drive.
//!
//! A drive couples the key-value [`DriveEngine`], a timing
//! [`DriveBackend`], the security configuration (numeric identities with
//! shared HMAC secrets and permission masks — real Kinetic drives ship with
//! the well-known demo identity `1` / secret `asdfasdf` that Pesos removes
//! at bootstrap), a unique device certificate that lets the controller
//! detect whole-drive replacement, and the administrative operations
//! (`Security`, `Setup`, `GetLog`) plus the peer-to-peer copy API.
//!
//! The drive processes authenticated protocol envelopes
//! ([`KineticDrive::handle_frame`]); the client library in [`crate::client`]
//! produces and consumes those envelopes.

use parking_lot::{Mutex, RwLock};
use pesos_crypto::hmac::HmacKey;
use pesos_crypto::{Certificate, CertificateBuilder, KeyPair};

use crate::backend::{BackendKind, DriveBackend, HddModel};
use crate::engine::{DriveEngine, EngineStats, StoredEntry};
use crate::error::KineticError;
use crate::fault::{FaultCounts, FaultDecision, FaultInjector, FaultPlan};
use crate::protocol::{
    AccountSpec, Command, Envelope, MessageType, ResponseStatus, StatusCode, VectoredEnvelope,
};

/// Permission bits for drive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Permission {
    /// Read values.
    Read,
    /// Write values.
    Write,
    /// Delete values.
    Delete,
    /// Run range scans.
    Range,
    /// Run device setup (cluster version, erase).
    Setup,
    /// Change the security configuration.
    Security,
    /// Initiate peer-to-peer pushes.
    P2p,
    /// Read device logs and statistics.
    GetLog,
}

impl Permission {
    /// The bit used in permission masks.
    pub fn bit(self) -> u32 {
        match self {
            Permission::Read => 1 << 0,
            Permission::Write => 1 << 1,
            Permission::Delete => 1 << 2,
            Permission::Range => 1 << 3,
            Permission::Setup => 1 << 4,
            Permission::Security => 1 << 5,
            Permission::P2p => 1 << 6,
            Permission::GetLog => 1 << 7,
        }
    }

    /// A mask granting every permission.
    pub fn all() -> u32 {
        0xff
    }

    /// A mask granting only data-path permissions (read/write/delete/range).
    pub fn data_only() -> u32 {
        Permission::Read.bit()
            | Permission::Write.bit()
            | Permission::Delete.bit()
            | Permission::Range.bit()
    }
}

/// An access-control account on the drive.
///
/// The HMAC key schedule for the account secret is run once at construction
/// and cached, so the two MACs the drive computes per exchange (request
/// verify, response seal) clone a midstate instead of redoing the schedule.
/// All fields are private so the secret and its cached key schedule cannot
/// drift apart: changing credentials means building a new `Account`.
#[derive(Clone)]
pub struct Account {
    /// Numeric identity presented in envelopes.
    identity: i64,
    /// Shared HMAC secret.
    secret: Vec<u8>,
    /// Permission mask ([`Permission::bit`] values OR-ed together).
    permissions: u32,
    /// Precomputed HMAC key schedule for `secret`.
    mac_key: HmacKey,
}

impl Account {
    /// Creates an account, running the HMAC key schedule for `secret` once.
    pub fn new(identity: i64, secret: Vec<u8>, permissions: u32) -> Self {
        let mac_key = HmacKey::new(&secret);
        Account {
            identity,
            secret,
            permissions,
            mac_key,
        }
    }

    /// The numeric identity presented in envelopes.
    pub fn identity(&self) -> i64 {
        self.identity
    }

    /// The shared HMAC secret.
    pub fn secret(&self) -> &[u8] {
        &self.secret
    }

    /// The permission mask.
    pub fn permissions(&self) -> u32 {
        self.permissions
    }

    /// True if the account holds `permission`.
    pub fn allows(&self, permission: Permission) -> bool {
        self.permissions & permission.bit() != 0
    }

    /// The cached HMAC key schedule for this account's secret.
    pub fn mac_key(&self) -> &HmacKey {
        &self.mac_key
    }
}

impl std::fmt::Debug for Account {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Account")
            .field("identity", &self.identity)
            .field("secret", &"<redacted>")
            .field("permissions", &self.permissions)
            .finish()
    }
}

impl PartialEq for Account {
    fn eq(&self, other: &Self) -> bool {
        self.identity == other.identity
            && self.secret == other.secret
            && self.permissions == other.permissions
    }
}

impl Eq for Account {}

/// The security configuration of a drive.
#[derive(Debug, Clone, Default)]
pub struct AccessControl {
    accounts: Vec<Account>,
}

impl AccessControl {
    /// The factory configuration: the well-known demo identity with full
    /// permissions, exactly what Pesos must remove at bootstrap.
    pub fn factory_default() -> Self {
        AccessControl {
            accounts: vec![Account::new(1, b"asdfasdf".to_vec(), Permission::all())],
        }
    }

    /// Replaces all accounts.
    pub fn replace(&mut self, accounts: Vec<Account>) {
        self.accounts = accounts;
    }

    /// Looks up an account by identity.
    pub fn account(&self, identity: i64) -> Option<&Account> {
        self.accounts.iter().find(|a| a.identity == identity)
    }

    /// Number of configured accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True if no accounts are configured (drive is unreachable).
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }
}

/// Static configuration of a drive.
#[derive(Debug, Clone)]
pub struct DriveConfig {
    /// Drive identifier (serial number), e.g. `"kd-01"`.
    pub id: String,
    /// Advertised capacity in bytes.
    pub capacity_bytes: u64,
    /// Timing backend.
    pub backend: BackendKind,
    /// Custom HDD model (only used when `backend` is [`BackendKind::Hdd`]).
    pub hdd_model: Option<HddModel>,
    /// Initial cluster version.
    pub cluster_version: u64,
}

impl DriveConfig {
    /// Configuration for an in-memory simulator drive (the paper's "Sim").
    pub fn simulator(id: impl Into<String>) -> Self {
        DriveConfig {
            id: id.into(),
            capacity_bytes: 4 * 1024 * 1024 * 1024, // Plenty for benchmarks.
            backend: BackendKind::Memory,
            hdd_model: None,
            cluster_version: 0,
        }
    }

    /// Configuration for an HDD-modelled drive (the paper's "Disk").
    pub fn hdd(id: impl Into<String>) -> Self {
        DriveConfig {
            id: id.into(),
            capacity_bytes: 4 * 1024 * 1024 * 1024 * 1024, // 4 TB.
            backend: BackendKind::Hdd,
            hdd_model: None,
            cluster_version: 0,
        }
    }
}

/// Device information returned by `GetLog`.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveInfo {
    /// Drive identifier.
    pub id: String,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes in use.
    pub used_bytes: u64,
    /// Fraction of capacity in use.
    pub utilization: f64,
    /// Engine operation counters.
    pub stats: EngineStats,
    /// Current cluster version.
    pub cluster_version: u64,
    /// Number of configured accounts.
    pub accounts: usize,
}

/// A simulated Kinetic drive.
pub struct KineticDrive {
    config: DriveConfig,
    engine: Mutex<DriveEngine>,
    backend: DriveBackend,
    security: RwLock<AccessControl>,
    cluster_version: RwLock<u64>,
    device_keys: KeyPair,
    device_certificate: Certificate,
    /// Simulated availability flag (failure injection).
    online: RwLock<bool>,
    /// Optional deterministic fault source (see [`crate::fault`]).
    fault: Mutex<Option<FaultInjector>>,
}

impl KineticDrive {
    /// Creates a drive in its factory state.
    pub fn new(config: DriveConfig) -> Self {
        let backend = match config.backend {
            BackendKind::Memory => DriveBackend::memory(),
            BackendKind::Hdd => match config.hdd_model {
                Some(model) => DriveBackend::hdd_with(model),
                None => DriveBackend::hdd(),
            },
        };
        let device_keys = KeyPair::from_seed(format!("kinetic-device-{}", config.id).as_bytes());
        let device_certificate =
            CertificateBuilder::new(format!("drive:{}", config.id), device_keys.public())
                .claim("model", vec!["ST4000NK0001".to_string()])
                .claim("serial", vec![config.id.clone()])
                .issue_self_signed(&device_keys);
        KineticDrive {
            engine: Mutex::with_rank(
                parking_lot::lock_order::DRIVE_ENGINE,
                DriveEngine::new(config.capacity_bytes),
            ),
            backend,
            security: RwLock::with_rank(
                parking_lot::lock_order::DRIVE_SECURITY,
                AccessControl::factory_default(),
            ),
            cluster_version: RwLock::with_rank(
                parking_lot::lock_order::DRIVE_CLUSTER_VERSION,
                config.cluster_version,
            ),
            device_keys,
            device_certificate,
            config,
            online: RwLock::with_rank(parking_lot::lock_order::DRIVE_ONLINE, true),
            fault: Mutex::with_rank(parking_lot::lock_order::DRIVE_FAULT, None),
        }
    }

    /// The drive identifier.
    pub fn id(&self) -> &str {
        &self.config.id
    }

    /// The unique device certificate (used by the controller to detect
    /// whole-drive replacement between restarts).
    pub fn device_certificate(&self) -> &Certificate {
        &self.device_certificate
    }

    /// The device signing keys (used to answer attestation challenges).
    pub fn device_keys(&self) -> &KeyPair {
        &self.device_keys
    }

    /// Simulates unplugging the drive; subsequent requests fail.
    pub fn set_online(&self, online: bool) {
        *self.online.write() = online;
    }

    /// True if the drive is reachable.
    pub fn is_online(&self) -> bool {
        *self.online.read()
    }

    /// Attaches a deterministic fault plan; subsequent requests may be
    /// dropped, torn, or delayed according to the plan's seeded generator.
    pub fn inject_faults(&self, plan: FaultPlan) {
        *self.fault.lock() = Some(FaultInjector::new(plan));
    }

    /// Removes any active fault plan.
    pub fn clear_faults(&self) {
        *self.fault.lock() = None;
    }

    /// Counters for the faults injected so far (zero when no plan is set).
    pub fn fault_counts(&self) -> FaultCounts {
        self.fault
            .lock()
            .as_ref()
            .map(|i| i.counts())
            .unwrap_or_default()
    }

    fn fault_decision(&self) -> FaultDecision {
        match self.fault.lock().as_ref() {
            Some(injector) => injector.decide(),
            None => FaultDecision::Pass,
        }
    }

    /// Returns device information (the `GetLog` payload).
    pub fn info(&self) -> DriveInfo {
        // Read the standalone cells before locking the engine: guards
        // created inside one struct literal all live to the end of the
        // statement, and the drive-internal lock order is engine →
        // security → cluster_version.
        let cluster_version = *self.cluster_version.read();
        let accounts = self.security.read().len();
        let engine = self.engine.lock();
        DriveInfo {
            id: self.config.id.clone(),
            capacity_bytes: engine.capacity_bytes(),
            used_bytes: engine.used_bytes(),
            utilization: engine.utilization(),
            stats: engine.stats(),
            cluster_version,
            accounts,
        }
    }

    /// Looks up the secret for an identity (used by the client library when
    /// the caller owns the drive's credentials).
    pub fn account_secret(&self, identity: i64) -> Option<Vec<u8>> {
        self.security
            .read()
            .account(identity)
            .map(|a| a.secret.clone())
    }

    /// Processes one authenticated protocol frame and returns the encoded,
    /// authenticated response frame.
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        match self.handle_frame_inner(frame) {
            Ok(response) => response,
            Err((identity_key, err)) => {
                // Best-effort error response; authenticate it if we know the
                // caller's key schedule, otherwise send it with an empty
                // secret.
                let key = identity_key.unwrap_or_else(|| Box::new(HmacKey::new(&[])));
                Envelope::seal_with(0, &key, &Self::error_response(&err)).encode()
            }
        }
    }

    fn error_response(err: &KineticError) -> Command {
        let mut resp = Command::request(MessageType::Response);
        resp.status = ResponseStatus {
            code: err.status_code(),
            message: err.to_string(),
        };
        resp
    }

    /// Processes one authenticated vectored frame — the in-process fast
    /// path of [`KineticDrive::handle_frame`].
    ///
    /// No frame bytes are materialized on either side: the request's
    /// payload chunk is the controller's shared buffer (the engine stores
    /// that same buffer on a PUT, and a GET response carries the engine's
    /// stored buffer back), and the frame tag is checked with the folded
    /// outer-transform verification ([`VectoredEnvelope::verified_by`] —
    /// one compression under this drive's own cached key schedule). A
    /// wrong-secret sealer still fails authentication exactly like on the
    /// bytes path; see the protocol module docs for why the full re-hash is
    /// unnecessary inside one process.
    pub fn handle_envelope(&self, envelope: &VectoredEnvelope) -> VectoredEnvelope {
        match self.handle_envelope_inner(envelope) {
            Ok(response) => response,
            Err((identity_key, err)) => {
                let key = identity_key.unwrap_or_else(|| Box::new(HmacKey::new(&[])));
                Envelope::seal_vectored(0, &key, Self::error_response(&err))
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn handle_envelope_inner(
        &self,
        envelope: &VectoredEnvelope,
    ) -> Result<VectoredEnvelope, (Option<Box<HmacKey>>, KineticError)> {
        if !self.is_online() {
            return Err((
                None,
                KineticError::DriveUnavailable(format!("drive {} offline", self.config.id)),
            ));
        }
        let decision = self.fault_decision();
        if decision == FaultDecision::DropRequest {
            return Err((
                None,
                KineticError::DriveUnavailable(format!(
                    "injected fault: drive {} dropped the request",
                    self.config.id
                )),
            ));
        }
        let account = {
            let security = self.security.read();
            security.account(envelope.identity()).cloned()
        };
        let account = account.ok_or_else(|| {
            (
                None,
                KineticError::NotAuthorized(format!("unknown identity {}", envelope.identity())),
            )
        })?;
        if !envelope.verified_by(account.mac_key()) {
            return Err((
                Some(Box::new(account.mac_key().clone())),
                KineticError::AuthenticationFailed,
            ));
        }
        let response = self.execute(&account, envelope.command());
        if decision == FaultDecision::TearReply {
            // The operation ran; the caller is told it did not. Recovery
            // code must treat this exactly like a dropped request.
            return Err((
                Some(Box::new(account.mac_key().clone())),
                KineticError::DriveUnavailable(format!(
                    "injected fault: drive {} tore the reply",
                    self.config.id
                )),
            ));
        }
        Ok(Envelope::seal_vectored(
            envelope.identity(),
            account.mac_key(),
            response,
        ))
    }

    #[allow(clippy::type_complexity)]
    fn handle_frame_inner(
        &self,
        frame: &[u8],
    ) -> Result<Vec<u8>, (Option<Box<HmacKey>>, KineticError)> {
        if !self.is_online() {
            return Err((
                None,
                KineticError::DriveUnavailable(format!("drive {} offline", self.config.id)),
            ));
        }
        let decision = self.fault_decision();
        if decision == FaultDecision::DropRequest {
            return Err((
                None,
                KineticError::DriveUnavailable(format!(
                    "injected fault: drive {} dropped the request",
                    self.config.id
                )),
            ));
        }
        let envelope = Envelope::decode(frame).map_err(|e| (None, e))?;
        let account = {
            let security = self.security.read();
            security.account(envelope.identity).cloned()
        };
        let account = account.ok_or_else(|| {
            (
                None,
                KineticError::NotAuthorized(format!("unknown identity {}", envelope.identity)),
            )
        })?;
        let command = envelope
            .open_with(account.mac_key())
            .map_err(|e| (Some(Box::new(account.mac_key().clone())), e))?;

        let response = self.execute(&account, &command);
        if decision == FaultDecision::TearReply {
            return Err((
                Some(Box::new(account.mac_key().clone())),
                KineticError::DriveUnavailable(format!(
                    "injected fault: drive {} tore the reply",
                    self.config.id
                )),
            ));
        }
        Ok(Envelope::seal_with(envelope.identity, account.mac_key(), &response).encode())
    }

    /// Executes an already authenticated command for `account`.
    pub fn execute(&self, account: &Account, command: &Command) -> Command {
        // Cluster version must match for data operations (admin Setup may
        // change it).
        let current_cluster = *self.cluster_version.read();
        if command.cluster_version != current_cluster
            && command.message_type != MessageType::Setup
            && command.message_type != MessageType::GetLog
        {
            return Command::response_to(
                command,
                StatusCode::InvalidRequest,
                format!(
                    "cluster version mismatch: drive at {current_cluster}, request at {}",
                    command.cluster_version
                ),
            );
        }

        match command.message_type {
            MessageType::Noop => Command::response_to(command, StatusCode::Success, ""),
            MessageType::Put => self.op_put(account, command),
            MessageType::Get => self.op_get(account, command),
            MessageType::Delete => self.op_delete(account, command),
            MessageType::GetKeyRange => self.op_range(account, command),
            MessageType::Security => self.op_security(account, command),
            MessageType::Setup => self.op_setup(account, command),
            MessageType::GetLog => self.op_getlog(account, command),
            MessageType::Flush => Command::response_to(command, StatusCode::Success, "flushed"),
            MessageType::PeerToPeerPush => Command::response_to(
                command,
                StatusCode::NotAttempted,
                "peer-to-peer push must be mediated by the cluster layer",
            ),
            MessageType::Response => Command::response_to(
                command,
                StatusCode::InvalidRequest,
                "response message sent as request",
            ),
        }
    }

    fn deny(command: &Command, what: &str) -> Command {
        Command::response_to(
            command,
            StatusCode::NotAuthorized,
            format!("identity lacks {what} permission"),
        )
    }

    fn op_put(&self, account: &Account, command: &Command) -> Command {
        if !account.allows(Permission::Write) {
            return Self::deny(command, "write");
        }
        self.backend
            .charge_io(command.body.key.len() + command.body.value.len());
        let result = self.engine.lock().put(
            &command.body.key,
            command.body.value.clone(),
            &command.body.db_version,
            command.body.new_version.clone(),
            command.body.force,
        );
        match result {
            Ok(()) => Command::response_to(command, StatusCode::Success, ""),
            Err(e) => Command::response_to(command, e.status_code(), e.to_string()),
        }
    }

    fn op_get(&self, account: &Account, command: &Command) -> Command {
        if !account.allows(Permission::Read) {
            return Self::deny(command, "read");
        }
        let result = self.engine.lock().get(&command.body.key);
        match result {
            Ok(StoredEntry { value, version }) => {
                self.backend.charge_io(command.body.key.len() + value.len());
                let mut resp = Command::response_to(command, StatusCode::Success, "");
                resp.body.key = command.body.key.clone();
                resp.body.value = value;
                resp.body.db_version = version;
                resp
            }
            Err(e) => {
                self.backend.charge_io(command.body.key.len());
                Command::response_to(command, e.status_code(), e.to_string())
            }
        }
    }

    fn op_delete(&self, account: &Account, command: &Command) -> Command {
        if !account.allows(Permission::Delete) {
            return Self::deny(command, "delete");
        }
        self.backend.charge_io(command.body.key.len());
        let result = self.engine.lock().delete(
            &command.body.key,
            &command.body.db_version,
            command.body.force,
        );
        match result {
            Ok(()) => Command::response_to(command, StatusCode::Success, ""),
            Err(e) => Command::response_to(command, e.status_code(), e.to_string()),
        }
    }

    fn op_range(&self, account: &Account, command: &Command) -> Command {
        if !account.allows(Permission::Range) {
            return Self::deny(command, "range");
        }
        // `max_returned` is taken literally: zero means "return no keys".
        // The encoder carries the field explicitly even when zero, so a
        // zero limit can no longer decode as "absent" and silently become
        // a default page size.
        let max = command.body.max_returned as usize;
        let keys =
            self.engine
                .lock()
                .key_range(&command.body.range_start, &command.body.range_end, max);
        self.backend
            .charge_io(keys.iter().map(|k| k.len()).sum::<usize>());
        let mut resp = Command::response_to(command, StatusCode::Success, "");
        // Keys are returned length-prefixed in the value field (the real
        // protocol uses a repeated field; this keeps the codec small while
        // staying unambiguous for keys containing any byte, including the
        // newline a join-based encoding would corrupt).
        let mut payload = Vec::with_capacity(keys.iter().map(|k| k.len() + 4).sum());
        for key in &keys {
            payload.extend_from_slice(&(key.len() as u32).to_be_bytes());
            payload.extend_from_slice(key);
        }
        resp.body.value = payload.into();
        resp
    }

    fn op_security(&self, account: &Account, command: &Command) -> Command {
        if !account.allows(Permission::Security) {
            return Self::deny(command, "security");
        }
        if command.body.security_accounts.is_empty() {
            return Command::response_to(
                command,
                StatusCode::InvalidRequest,
                "security command must define at least one account",
            );
        }
        let accounts: Vec<Account> = command
            .body
            .security_accounts
            .iter()
            .map(|spec: &AccountSpec| {
                Account::new(spec.identity, spec.secret.clone(), spec.permissions)
            })
            .collect();
        self.security.write().replace(accounts);
        Command::response_to(command, StatusCode::Success, "security updated")
    }

    fn op_setup(&self, account: &Account, command: &Command) -> Command {
        if !account.allows(Permission::Setup) {
            return Self::deny(command, "setup");
        }
        if let Some(v) = command.body.setup_new_cluster_version {
            *self.cluster_version.write() = v;
        }
        if command.body.setup_erase {
            self.engine.lock().erase();
        }
        Command::response_to(command, StatusCode::Success, "setup applied")
    }

    fn op_getlog(&self, account: &Account, command: &Command) -> Command {
        if !account.allows(Permission::GetLog) {
            return Self::deny(command, "getlog");
        }
        let info = self.info();
        let mut resp = Command::response_to(command, StatusCode::Success, "");
        resp.body.value = format!(
            "id={};capacity={};used={};utilization={:.6};keys={};cluster_version={}",
            info.id,
            info.capacity_bytes,
            info.used_bytes,
            info.utilization,
            info.stats.keys,
            info.cluster_version
        )
        .into_bytes()
        .into();
        resp
    }

    /// Copies the given keys directly to `target`, standing in for the
    /// drive-to-drive P2P push API (used by replication repair).
    ///
    /// Returns the number of keys copied; missing keys are skipped.
    pub fn push_to(&self, target: &KineticDrive, keys: &[Vec<u8>]) -> Result<usize, KineticError> {
        if !self.is_online() {
            return Err(KineticError::DriveUnavailable(self.config.id.clone()));
        }
        if !target.is_online() {
            return Err(KineticError::DriveUnavailable(target.config.id.clone()));
        }
        let mut copied = 0;
        for key in keys {
            let entry = { self.engine.lock().get(key) };
            if let Ok(entry) = entry {
                self.backend.charge_io(key.len() + entry.value.len());
                target.backend.charge_io(key.len() + entry.value.len());
                target
                    .engine
                    .lock()
                    .put(key, entry.value, &[], entry.version, true)?;
                copied += 1;
            }
        }
        Ok(copied)
    }

    /// Direct engine access for tests and recovery tooling: reads a key
    /// without permission checks or backend charges.
    pub fn peek(&self, key: &[u8]) -> Option<StoredEntry> {
        self.engine.lock().get(key).ok()
    }

    /// Number of keys currently stored.
    pub fn key_count(&self) -> usize {
        self.engine.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive() -> KineticDrive {
        KineticDrive::new(DriveConfig::simulator("kd-test"))
    }

    fn admin_envelope(drive: &KineticDrive, command: &Command) -> Vec<u8> {
        let secret = drive.account_secret(1).unwrap();
        Envelope::seal(1, &secret, command).encode()
    }

    fn roundtrip(drive: &KineticDrive, command: &Command) -> Command {
        let frame = admin_envelope(drive, command);
        let resp_frame = drive.handle_frame(&frame);
        let env = Envelope::decode(&resp_frame).unwrap();
        Command::decode(&env.command_bytes).unwrap()
    }

    #[test]
    fn factory_default_account_works() {
        let d = drive();
        let mut put = Command::request(MessageType::Put);
        put.body.key = b"k".to_vec();
        put.body.value = b"v".into();
        put.body.new_version = b"1".to_vec();
        let resp = roundtrip(&d, &put);
        assert_eq!(resp.status.code, StatusCode::Success);

        let mut get = Command::request(MessageType::Get);
        get.body.key = b"k".to_vec();
        let resp = roundtrip(&d, &get);
        assert_eq!(resp.status.code, StatusCode::Success);
        assert_eq!(resp.body.value, b"v");
        assert_eq!(resp.body.db_version, b"1");
    }

    #[test]
    fn unknown_identity_rejected() {
        let d = drive();
        let cmd = Command::request(MessageType::Noop);
        let frame = Envelope::seal(99, b"whatever", &cmd).encode();
        let resp_frame = d.handle_frame(&frame);
        let env = Envelope::decode(&resp_frame).unwrap();
        let resp = Command::decode(&env.command_bytes).unwrap();
        assert_eq!(resp.status.code, StatusCode::NotAuthorized);
    }

    #[test]
    fn bad_hmac_rejected() {
        let d = drive();
        let cmd = Command::request(MessageType::Noop);
        let frame = Envelope::seal(1, b"wrong-secret", &cmd).encode();
        let resp_frame = d.handle_frame(&frame);
        let env = Envelope::decode(&resp_frame).unwrap();
        let resp = Command::decode(&env.command_bytes).unwrap();
        assert_eq!(resp.status.code, StatusCode::HmacFailure);
    }

    #[test]
    fn security_takeover_locks_out_old_identity() {
        let d = drive();
        // Replace all accounts with a single Pesos admin identity.
        let mut sec = Command::request(MessageType::Security);
        sec.body.security_accounts = vec![AccountSpec {
            identity: 42,
            secret: b"pesos-admin-secret".to_vec(),
            permissions: Permission::all(),
        }];
        let resp = roundtrip(&d, &sec);
        assert_eq!(resp.status.code, StatusCode::Success);

        // The factory identity no longer works.
        let noop = Command::request(MessageType::Noop);
        let frame = Envelope::seal(1, b"asdfasdf", &noop).encode();
        let env = Envelope::decode(&d.handle_frame(&frame)).unwrap();
        let resp = Command::decode(&env.command_bytes).unwrap();
        assert_eq!(resp.status.code, StatusCode::NotAuthorized);

        // The new identity does.
        let frame = Envelope::seal(42, b"pesos-admin-secret", &noop).encode();
        let env = Envelope::decode(&d.handle_frame(&frame)).unwrap();
        let resp = Command::decode(&env.command_bytes).unwrap();
        assert_eq!(resp.status.code, StatusCode::Success);
    }

    #[test]
    fn permissions_enforced() {
        let d = drive();
        // Install a read-only identity.
        let mut sec = Command::request(MessageType::Security);
        sec.body.security_accounts = vec![
            AccountSpec {
                identity: 1,
                secret: b"asdfasdf".to_vec(),
                permissions: Permission::all(),
            },
            AccountSpec {
                identity: 2,
                secret: b"reader".to_vec(),
                permissions: Permission::Read.bit(),
            },
        ];
        assert_eq!(roundtrip(&d, &sec).status.code, StatusCode::Success);

        let mut put = Command::request(MessageType::Put);
        put.body.key = b"k".to_vec();
        put.body.value = b"v".into();
        put.body.new_version = b"1".to_vec();
        let frame = Envelope::seal(2, b"reader", &put).encode();
        let env = Envelope::decode(&d.handle_frame(&frame)).unwrap();
        let resp = Command::decode(&env.command_bytes).unwrap();
        assert_eq!(resp.status.code, StatusCode::NotAuthorized);
    }

    #[test]
    fn cluster_version_mismatch_rejected() {
        let d = drive();
        // Raise the cluster version via setup.
        let mut setup = Command::request(MessageType::Setup);
        setup.body.setup_new_cluster_version = Some(5);
        assert_eq!(roundtrip(&d, &setup).status.code, StatusCode::Success);

        // A data request still at version 0 is rejected.
        let mut get = Command::request(MessageType::Get);
        get.body.key = b"k".to_vec();
        let resp = roundtrip(&d, &get);
        assert_eq!(resp.status.code, StatusCode::InvalidRequest);

        // With the right version it reaches the engine (NotFound).
        let mut get = Command::request(MessageType::Get);
        get.cluster_version = 5;
        get.body.key = b"k".to_vec();
        let resp = roundtrip(&d, &get);
        assert_eq!(resp.status.code, StatusCode::NotFound);
    }

    #[test]
    fn setup_erase_clears_data() {
        let d = drive();
        let mut put = Command::request(MessageType::Put);
        put.body.key = b"k".to_vec();
        put.body.value = b"v".into();
        put.body.new_version = b"1".to_vec();
        roundtrip(&d, &put);
        assert_eq!(d.key_count(), 1);

        let mut setup = Command::request(MessageType::Setup);
        setup.body.setup_erase = true;
        assert_eq!(roundtrip(&d, &setup).status.code, StatusCode::Success);
        assert_eq!(d.key_count(), 0);
    }

    #[test]
    fn getlog_reports_utilization() {
        let d = drive();
        let mut log = Command::request(MessageType::GetLog);
        log.body.log_type = "utilization".to_string();
        let resp = roundtrip(&d, &log);
        assert_eq!(resp.status.code, StatusCode::Success);
        let text = String::from_utf8(resp.body.value.to_vec()).unwrap();
        assert!(text.contains("id=kd-test"));
        assert!(text.contains("cluster_version=0"));
    }

    #[test]
    fn range_scan_over_frame_interface() {
        let d = drive();
        // Includes a key with an embedded newline: the length-prefixed
        // range encoding must return it intact (a join-based encoding
        // would split it in two).
        for k in ["a/1", "a/2", "a/x\ny", "b/1"] {
            let mut put = Command::request(MessageType::Put);
            put.body.key = k.as_bytes().to_vec();
            put.body.value = b"v".into();
            put.body.new_version = b"1".to_vec();
            roundtrip(&d, &put);
        }
        let mut range = Command::request(MessageType::GetKeyRange);
        range.body.range_start = b"a/".to_vec();
        range.body.range_end = b"a/~".to_vec();
        range.body.max_returned = 100;
        let resp = roundtrip(&d, &range);
        assert_eq!(resp.status.code, StatusCode::Success);
        let mut keys = Vec::new();
        let bytes = &resp.body.value;
        let mut offset = 0;
        while offset < bytes.len() {
            let mut len = [0u8; 4];
            len.copy_from_slice(&bytes[offset..offset + 4]);
            let len = u32::from_be_bytes(len) as usize;
            offset += 4;
            keys.push(String::from_utf8(bytes[offset..offset + len].to_vec()).unwrap());
            offset += len;
        }
        assert_eq!(keys, vec!["a/1", "a/2", "a/x\ny"]);
    }

    #[test]
    fn range_with_zero_max_returned_returns_no_keys() {
        // `max_returned == 0` is honoured literally, not replaced by a
        // default page size: the response carries zero keys. Regression
        // for the presence bug where the zero was dropped on encode and
        // the drive substituted a 200-key page.
        let d = drive();
        for k in ["r/1", "r/2", "r/3"] {
            let mut put = Command::request(MessageType::Put);
            put.body.key = k.as_bytes().to_vec();
            put.body.value = b"v".into();
            put.body.new_version = b"1".to_vec();
            assert_eq!(roundtrip(&d, &put).status.code, StatusCode::Success);
        }
        let mut range = Command::request(MessageType::GetKeyRange);
        range.body.range_start = b"r/".to_vec();
        range.body.range_end = b"r/~".to_vec();
        range.body.max_returned = 0;
        let resp = roundtrip(&d, &range);
        assert_eq!(resp.status.code, StatusCode::Success);
        assert!(
            resp.body.value.is_empty(),
            "max_returned=0 must return no keys, got {} payload bytes",
            resp.body.value.len()
        );
        // A non-zero limit still pages.
        range.body.max_returned = 2;
        let resp = roundtrip(&d, &range);
        assert_eq!(resp.status.code, StatusCode::Success);
        assert!(!resp.body.value.is_empty());
    }

    #[test]
    fn vectored_exchange_matches_frame_exchange() {
        // The vectored fast path and the serialized frame path must agree
        // on the response for the same request.
        let d = drive();
        let secret = d.account_secret(1).unwrap();
        let key = HmacKey::new(&secret);

        let mut put = Command::request(MessageType::Put);
        put.body.key = b"vec".to_vec();
        put.body.value = b"payload".into();
        put.body.new_version = b"1".to_vec();
        let resp = d.handle_envelope(&Envelope::seal_vectored(1, &key, put));
        assert!(resp.verified_by(&key));
        assert_eq!(resp.command().status.code, StatusCode::Success);

        let mut get = Command::request(MessageType::Get);
        get.body.key = b"vec".to_vec();
        let via_env = d
            .handle_envelope(&Envelope::seal_vectored(1, &key, get.clone()))
            .into_command();
        let frame = Envelope::seal_with(1, &key, &get).encode();
        let via_frame = Envelope::decode(&d.handle_frame(&frame))
            .unwrap()
            .open_with(&key)
            .unwrap();
        assert_eq!(via_env, via_frame);
        assert_eq!(via_env.body.value, b"payload");
    }

    #[test]
    fn vectored_exchange_rejects_wrong_secret_and_unknown_identity() {
        let d = drive();
        let noop = Command::request(MessageType::Noop);

        let wrong = Envelope::seal_vectored(1, &HmacKey::new(b"wrong-secret"), noop.clone());
        let resp = d.handle_envelope(&wrong);
        assert_eq!(resp.command().status.code, StatusCode::HmacFailure);
        // The error response is sealed with the account's real key, as on
        // the bytes path.
        assert!(resp.verified_by(&HmacKey::new(b"asdfasdf")));

        let unknown = Envelope::seal_vectored(99, &HmacKey::new(b"whatever"), noop);
        let resp = d.handle_envelope(&unknown);
        assert_eq!(resp.command().status.code, StatusCode::NotAuthorized);
        assert!(resp.verified_by(&HmacKey::new(&[])));

        d.set_online(false);
        let resp = d.handle_envelope(&Envelope::seal_vectored(
            1,
            &HmacKey::new(b"asdfasdf"),
            Command::request(MessageType::Noop),
        ));
        assert_eq!(resp.command().status.code, StatusCode::NotAttempted);
    }

    #[test]
    fn vectored_put_stores_the_shared_payload_buffer() {
        // The one-copy story, pinned at the strongest point: the buffer the
        // engine ends up storing *is* the caller's payload allocation — the
        // whole wire path moved it by reference count only. (The simulated
        // enclave-boundary copy is charged by the controller's cost model,
        // not paid here.)
        use crate::protocol::Payload;
        let d = drive();
        let key = HmacKey::new(b"asdfasdf");
        let payload: Payload = vec![42u8; 1024].into();
        let mut put = Command::request(MessageType::Put);
        put.body.key = b"shared".to_vec();
        put.body.value = payload.clone();
        put.body.new_version = b"1".to_vec();
        let resp = d.handle_envelope(&Envelope::seal_vectored(1, &key, put));
        assert_eq!(resp.command().status.code, StatusCode::Success);
        let stored = d.peek(b"shared").unwrap();
        assert!(
            std::sync::Arc::ptr_eq(stored.value.as_arc(), payload.as_arc()),
            "engine stored a copy instead of the shared payload buffer"
        );

        // And the read path hands the stored buffer back, again by
        // reference.
        let mut get = Command::request(MessageType::Get);
        get.body.key = b"shared".to_vec();
        let got = d
            .handle_envelope(&Envelope::seal_vectored(1, &key, get))
            .into_command();
        assert!(std::sync::Arc::ptr_eq(
            got.body.value.as_arc(),
            payload.as_arc()
        ));
    }

    #[test]
    fn offline_drive_unreachable() {
        let d = drive();
        d.set_online(false);
        let noop = Command::request(MessageType::Noop);
        let frame = Envelope::seal(1, b"asdfasdf", &noop).encode();
        let env = Envelope::decode(&d.handle_frame(&frame)).unwrap();
        let resp = Command::decode(&env.command_bytes).unwrap();
        assert_eq!(resp.status.code, StatusCode::NotAttempted);
        d.set_online(true);
        assert!(d.is_online());
    }

    #[test]
    fn p2p_push_copies_objects() {
        let source = drive();
        let target = KineticDrive::new(DriveConfig::simulator("kd-target"));
        let mut put = Command::request(MessageType::Put);
        put.body.key = b"replicate-me".to_vec();
        put.body.value = b"payload".into();
        put.body.new_version = b"3".to_vec();
        roundtrip(&source, &put);

        let copied = source
            .push_to(&target, &[b"replicate-me".to_vec(), b"missing".to_vec()])
            .unwrap();
        assert_eq!(copied, 1);
        let entry = target.peek(b"replicate-me").unwrap();
        assert_eq!(entry.value, b"payload");
        assert_eq!(entry.version, b"3");

        target.set_online(false);
        assert!(source
            .push_to(&target, &[b"replicate-me".to_vec()])
            .is_err());
    }

    #[test]
    fn injected_drop_fails_request_without_executing() {
        let d = drive();
        d.inject_faults(FaultPlan::errors(11, 1.0));
        let key = HmacKey::new(b"asdfasdf");
        let mut put = Command::request(MessageType::Put);
        put.body.key = b"k".to_vec();
        put.body.value = b"v".into();
        put.body.new_version = b"1".to_vec();
        let resp = d.handle_envelope(&Envelope::seal_vectored(1, &key, put));
        assert_eq!(resp.command().status.code, StatusCode::NotAttempted);
        d.clear_faults();
        assert!(d.peek(b"k").is_none(), "dropped request must not execute");
        assert_eq!(d.fault_counts(), FaultCounts::default());
    }

    #[test]
    fn injected_torn_reply_executes_then_reports_failure() {
        let d = drive();
        d.inject_faults(FaultPlan::torn_replies(11, 1.0));
        let key = HmacKey::new(b"asdfasdf");
        let mut put = Command::request(MessageType::Put);
        put.body.key = b"torn".to_vec();
        put.body.value = b"v".into();
        put.body.new_version = b"1".to_vec();
        let resp = d.handle_envelope(&Envelope::seal_vectored(1, &key, put));
        // The caller sees a failure sealed under its own account key...
        assert_eq!(resp.command().status.code, StatusCode::NotAttempted);
        assert!(resp.verified_by(&key));
        // ...but the operation ran.
        assert!(d.fault_counts().torn >= 1);
        d.clear_faults();
        assert_eq!(d.peek(b"torn").unwrap().value, b"v");
    }

    #[test]
    fn device_certificate_is_stable_and_unique() {
        let a = KineticDrive::new(DriveConfig::simulator("kd-a"));
        let a2 = KineticDrive::new(DriveConfig::simulator("kd-a"));
        let b = KineticDrive::new(DriveConfig::simulator("kd-b"));
        assert_eq!(
            a.device_certificate().fingerprint(),
            a2.device_certificate().fingerprint()
        );
        assert_ne!(
            a.device_certificate().fingerprint(),
            b.device_certificate().fingerprint()
        );
        a.device_certificate().verify_signature().unwrap();
    }
}
