//! Drive timing backends: the in-memory simulator and the HDD model.
//!
//! The paper evaluates Pesos against two storage backends: the Java Kinetic
//! *simulator* (in memory, effectively CPU-bound — this is what exposes the
//! controller's own limits, left axes of Figures 3–10) and the physical
//! Seagate Kinetic *HDD*, which saturates at roughly 1 000 IOP/s per drive
//! because of head seeks (right axes). This module models both.
//!
//! The HDD model charges a per-operation service time composed of an average
//! seek, half a rotation at 7 200 RPM and media transfer at a configurable
//! MB/s, and serialises operations per drive (a single actuator), which is
//! what produces the characteristic flat ~1 kIOP/s ceiling and the linearly
//! growing queueing latency under load.

use std::time::Duration;

use parking_lot::Mutex;

/// Which timing model a drive uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// In-memory simulator: no added latency beyond the code path itself.
    Memory,
    /// Rotational-drive model with seek, rotation and transfer components.
    Hdd,
}

/// Parameters of the rotational-drive model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HddModel {
    /// Average seek time.
    pub avg_seek: Duration,
    /// Rotational speed in RPM (used for half-rotation latency).
    pub rpm: u32,
    /// Sustained media transfer rate in bytes per second.
    pub transfer_rate: u64,
    /// Fixed controller/protocol overhead per operation on the drive SoC.
    pub controller_overhead: Duration,
}

impl Default for HddModel {
    fn default() -> Self {
        // Parameters approximating the 4 TB Kinetic HDD: ~8.5 ms average
        // seek, 5900 RPM spindle, ~150 MB/s sustained transfer. Together
        // with the protocol overhead this yields roughly 1 000 IOP/s per
        // drive for small objects when requests are spread across the
        // platter, but we scale the seek down because Kinetic's LevelDB
        // backend amortises seeks via compaction; the calibrated figure
        // reproduces the paper's ~800–1,100 IOP/s per drive.
        HddModel {
            avg_seek: Duration::from_micros(700),
            rpm: 5900,
            transfer_rate: 150 * 1024 * 1024,
            controller_overhead: Duration::from_micros(150),
        }
    }
}

impl HddModel {
    /// Service time for an operation touching `bytes` of data.
    pub fn service_time(&self, bytes: usize) -> Duration {
        let half_rotation = Duration::from_secs_f64(60.0 / self.rpm as f64 / 2.0 / 10.0);
        let transfer = Duration::from_secs_f64(bytes as f64 / self.transfer_rate as f64);
        self.avg_seek + half_rotation + transfer + self.controller_overhead
    }

    /// Approximate sustained IOP/s for the given object size.
    pub fn iops_estimate(&self, bytes: usize) -> f64 {
        1.0 / self.service_time(bytes).as_secs_f64()
    }
}

/// A drive backend: serialises operations and charges their service time.
#[derive(Debug)]
pub struct DriveBackend {
    kind: BackendKind,
    model: HddModel,
    /// Serialisation gate representing the single actuator; operations hold
    /// the lock for their service time.
    actuator: Mutex<()>,
}

impl DriveBackend {
    /// Creates an in-memory (simulator) backend.
    pub fn memory() -> Self {
        DriveBackend {
            kind: BackendKind::Memory,
            model: HddModel::default(),
            actuator: Mutex::with_rank(parking_lot::lock_order::BACKEND_ACTUATOR, ()),
        }
    }

    /// Creates an HDD backend with the default model.
    pub fn hdd() -> Self {
        Self::hdd_with(HddModel::default())
    }

    /// Creates an HDD backend with a custom model.
    pub fn hdd_with(model: HddModel) -> Self {
        DriveBackend {
            kind: BackendKind::Hdd,
            model,
            actuator: Mutex::with_rank(parking_lot::lock_order::BACKEND_ACTUATOR, ()),
        }
    }

    /// The backend kind.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// The HDD model (meaningful only for [`BackendKind::Hdd`]).
    pub fn model(&self) -> &HddModel {
        &self.model
    }

    /// Charges the I/O cost of an operation over `bytes` of data.
    ///
    /// For the memory backend this is free. For the HDD backend the calling
    /// thread waits for the service time while holding the actuator lock, so
    /// concurrent requests against one drive queue behind each other exactly
    /// as they do on a real spindle.
    pub fn charge_io(&self, bytes: usize) {
        match self.kind {
            BackendKind::Memory => {}
            BackendKind::Hdd => {
                let _gate = self.actuator.lock();
                std::thread::sleep(self.model.service_time(bytes));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn hdd_service_time_components() {
        let m = HddModel::default();
        let small = m.service_time(1024);
        let large = m.service_time(1024 * 1024);
        assert!(large > small);
        assert!(small >= m.avg_seek);
    }

    #[test]
    fn hdd_iops_in_expected_range() {
        let m = HddModel::default();
        let iops = m.iops_estimate(1024);
        // The paper measures ~800-1100 IOP/s per Kinetic drive.
        assert!(iops > 500.0 && iops < 2000.0, "iops = {iops}");
    }

    #[test]
    fn memory_backend_is_effectively_free() {
        let b = DriveBackend::memory();
        let start = Instant::now();
        for _ in 0..1000 {
            b.charge_io(1024);
        }
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(b.kind(), BackendKind::Memory);
    }

    #[test]
    fn hdd_backend_charges_latency() {
        let model = HddModel {
            avg_seek: Duration::from_millis(2),
            rpm: 7200,
            transfer_rate: 100 * 1024 * 1024,
            controller_overhead: Duration::from_micros(100),
        };
        let b = DriveBackend::hdd_with(model);
        let start = Instant::now();
        for _ in 0..5 {
            b.charge_io(1024);
        }
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert_eq!(b.kind(), BackendKind::Hdd);
    }

    #[test]
    fn hdd_serialises_concurrent_requests() {
        use std::sync::Arc;
        let model = HddModel {
            avg_seek: Duration::from_millis(5),
            rpm: 7200,
            transfer_rate: 100 * 1024 * 1024,
            controller_overhead: Duration::ZERO,
        };
        let b = Arc::new(DriveBackend::hdd_with(model));
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.charge_io(0))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Four 5+ ms operations serialised take at least ~20 ms.
        assert!(start.elapsed() >= Duration::from_millis(20));
    }
}
