//! The Kinetic client library used by the Pesos controller.
//!
//! Mirrors the (adapted) Seagate C client the paper describes: a session per
//! drive with per-message HMAC authentication, synchronous operations for
//! the request/response fast path, and an asynchronous interface in which
//! requests are placed into a bounded ring of in-flight operations and
//! serviced by a small thread pool, decoupling request submission from
//! response collection (paper §3.1 "Kinetic library" and §4.3).
//!
//! The "network" between client and drive is the in-process
//! [`KineticDrive::handle_envelope`] call, exchanging vectored frames
//! ([`VectoredEnvelope`]): the authenticated envelopes are structurally and
//! cryptographically identical to the byte frames a real deployment would
//! put on the wire (materializing one with [`VectoredEnvelope::encode`]
//! yields exactly those bytes, property-tested), but in process the payload
//! crosses as a shared buffer and the frame tag is checked with the folded
//! outer-transform verification — see the [`crate::protocol`] docs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{bounded, Receiver, Sender};
use pesos_crypto::hmac::HmacKey;

use crate::drive::KineticDrive;
use crate::error::KineticError;
use crate::protocol::{
    AccountSpec, Command, CommandBody, Envelope, MessageType, Payload, StatusCode, VectoredEnvelope,
};

/// Configuration of a client session.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The identity used to authenticate messages.
    pub identity: i64,
    /// The shared HMAC secret for that identity.
    pub secret: Vec<u8>,
    /// The cluster version expected by the drive.
    pub cluster_version: u64,
    /// Number of service threads handling asynchronous operations.
    pub service_threads: usize,
    /// Capacity of the in-flight operation ring.
    pub ring_capacity: usize,
}

impl ClientConfig {
    /// A configuration using the drive's factory-default demo account.
    pub fn factory_default() -> Self {
        ClientConfig {
            identity: 1,
            secret: b"asdfasdf".to_vec(),
            cluster_version: 0,
            service_threads: 2,
            ring_capacity: 64,
        }
    }

    /// A configuration for a Pesos administrative identity.
    pub fn admin(identity: i64, secret: Vec<u8>, cluster_version: u64) -> Self {
        ClientConfig {
            identity,
            secret,
            cluster_version,
            service_threads: 2,
            ring_capacity: 64,
        }
    }
}

/// Completion handle for an asynchronous operation.
pub struct AsyncHandle {
    rx: Receiver<Result<Command, KineticError>>,
}

impl AsyncHandle {
    /// Blocks until the operation completes.
    pub fn wait(self) -> Result<Command, KineticError> {
        self.rx
            .recv()
            .unwrap_or(Err(KineticError::ConnectionClosed))
    }

    /// Returns the result if it is already available.
    pub fn try_get(&self) -> Option<Result<Command, KineticError>> {
        self.rx.try_recv().ok()
    }
}

type Job = (VectoredEnvelope, Sender<Result<Command, KineticError>>);

/// A client session bound to one drive.
///
/// The HMAC key schedule for the session secret is run once at connect time
/// and shared with the service threads. Per exchange the client pays one
/// streaming MAC pass to seal the request (cached midstates, vectored
/// chunks) and a single outer compression to verify the response tag; the
/// request-side re-hash happens on the drive — in this simulation also as
/// one outer compression, since the chunks cross the boundary by reference
/// (protocol module docs).
pub struct KineticClient {
    drive: Arc<KineticDrive>,
    config: ClientConfig,
    mac_key: HmacKey,
    connection_id: u64,
    sequence: AtomicU64,
    job_tx: Sender<Job>,
    in_flight: Arc<AtomicU64>,
}

/// The HMAC key for the empty secret, used to authenticate error responses
/// produced before the drive could identify the caller.
fn empty_secret_key() -> &'static HmacKey {
    static KEY: OnceLock<HmacKey> = OnceLock::new();
    KEY.get_or_init(|| HmacKey::new(&[]))
}

impl KineticClient {
    /// Opens a session against `drive`.
    ///
    /// A `Noop` is exchanged to validate the credentials, mirroring the
    /// handshake/unsolicited status message of the real protocol.
    pub fn connect(drive: Arc<KineticDrive>, config: ClientConfig) -> Result<Self, KineticError> {
        let connection_id = rand::random::<u64>() | 1;
        let (job_tx, job_rx): (Sender<Job>, Receiver<Job>) = bounded(config.ring_capacity.max(1));
        let in_flight = Arc::new(AtomicU64::new(0));
        let mac_key = HmacKey::new(&config.secret);

        for i in 0..config.service_threads.max(1) {
            let rx = job_rx.clone();
            let drive = Arc::clone(&drive);
            let mac_key = mac_key.clone();
            let in_flight = Arc::clone(&in_flight);
            std::thread::Builder::new()
                .name(format!("kinetic-svc-{}-{i}", drive.id()))
                .spawn(move || {
                    while let Ok((envelope, done)) = rx.recv() {
                        let result = Self::exchange_envelope(&drive, &mac_key, &envelope);
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        let _ = done.send(result);
                    }
                })
                // pesos-lint: allow(panic_freedom, "service-thread spawn failure at construction is fatal initialization, not request handling")
                .expect("spawn kinetic service thread");
        }

        let client = KineticClient {
            drive,
            config,
            mac_key,
            connection_id,
            sequence: AtomicU64::new(1),
            job_tx,
            in_flight,
        };
        // Credential validation round trip.
        client.noop()?;
        Ok(client)
    }

    /// The drive this session is connected to.
    pub fn drive(&self) -> &Arc<KineticDrive> {
        &self.drive
    }

    /// The drive identifier.
    pub fn drive_id(&self) -> &str {
        self.drive.id()
    }

    /// Number of asynchronous operations currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    fn next_command(&self, message_type: MessageType) -> Command {
        let mut cmd = Command::request(message_type);
        cmd.connection_id = self.connection_id;
        cmd.sequence = self.sequence.fetch_add(1, Ordering::SeqCst);
        cmd.cluster_version = self.config.cluster_version;
        cmd
    }

    /// Performs one request/response exchange over the in-process vectored
    /// frame path: no wire bytes are materialized, payloads cross by shared
    /// buffer, and the response tag is checked with the folded
    /// outer-transform verification.
    fn exchange_envelope(
        drive: &KineticDrive,
        mac_key: &HmacKey,
        envelope: &VectoredEnvelope,
    ) -> Result<Command, KineticError> {
        let response = drive.handle_envelope(envelope);
        // Responses are authenticated with the session secret; an error
        // response produced before authentication uses an empty secret.
        if response.verified_by(mac_key) || response.verified_by(empty_secret_key()) {
            Ok(response.into_command())
        } else {
            Err(KineticError::AuthenticationFailed)
        }
    }

    fn exchange(&self, command: Command) -> Result<Command, KineticError> {
        let envelope = Envelope::seal_vectored(self.config.identity, &self.mac_key, command);
        Self::exchange_envelope(&self.drive, &self.mac_key, &envelope)
    }

    fn check_success(response: Command) -> Result<Command, KineticError> {
        if response.status.code.is_success() {
            Ok(response)
        } else {
            Err(KineticError::Rejected {
                code: response.status.code,
                message: response.status.message,
            })
        }
    }

    /// Sends a `Noop` (keep-alive / latency probe).
    pub fn noop(&self) -> Result<(), KineticError> {
        let cmd = self.next_command(MessageType::Noop);
        Self::check_success(self.exchange(cmd)?).map(|_| ())
    }

    /// Stores `value` under `key` with compare-and-swap semantics.
    pub fn put(
        &self,
        key: &[u8],
        value: impl Into<Payload>,
        expected_version: &[u8],
        new_version: &[u8],
        force: bool,
    ) -> Result<(), KineticError> {
        let mut cmd = self.next_command(MessageType::Put);
        cmd.body = CommandBody {
            key: key.to_vec(),
            value: value.into(),
            db_version: expected_version.to_vec(),
            new_version: new_version.to_vec(),
            force,
            ..CommandBody::default()
        };
        Self::check_success(self.exchange(cmd)?).map(|_| ())
    }

    /// Retrieves the value and version stored under `key`.
    pub fn get(&self, key: &[u8]) -> Result<(Payload, Vec<u8>), KineticError> {
        let mut cmd = self.next_command(MessageType::Get);
        cmd.body.key = key.to_vec();
        let resp = self.exchange(cmd)?;
        match resp.status.code {
            StatusCode::Success => Ok((resp.body.value, resp.body.db_version)),
            StatusCode::NotFound => Err(KineticError::NotFound),
            code => Err(KineticError::Rejected {
                code,
                message: resp.status.message,
            }),
        }
    }

    /// Deletes `key` with compare-and-swap semantics.
    pub fn delete(
        &self,
        key: &[u8],
        expected_version: &[u8],
        force: bool,
    ) -> Result<(), KineticError> {
        let mut cmd = self.next_command(MessageType::Delete);
        cmd.body.key = key.to_vec();
        cmd.body.db_version = expected_version.to_vec();
        cmd.body.force = force;
        let resp = self.exchange(cmd)?;
        match resp.status.code {
            StatusCode::Success => Ok(()),
            StatusCode::NotFound => Err(KineticError::NotFound),
            code => Err(KineticError::Rejected {
                code,
                message: resp.status.message,
            }),
        }
    }

    /// Returns up to `max` keys in `[start, end]`.
    ///
    /// `max == 0` means "no results" and yields an empty listing — the
    /// limit travels explicitly on the wire, so the drive never substitutes
    /// a default page size for it.
    pub fn key_range(
        &self,
        start: &[u8],
        end: &[u8],
        max: u32,
    ) -> Result<Vec<Vec<u8>>, KineticError> {
        let mut cmd = self.next_command(MessageType::GetKeyRange);
        cmd.body.range_start = start.to_vec();
        cmd.body.range_end = end.to_vec();
        cmd.body.max_returned = max;
        let resp = Self::check_success(self.exchange(cmd)?)?;
        // Length-prefixed keys (see the drive's range handler): safe for
        // keys containing any byte.
        let bytes = &resp.body.value;
        let mut keys = Vec::new();
        let mut offset = 0usize;
        while offset < bytes.len() {
            if offset + 4 > bytes.len() {
                return Err(KineticError::Malformed(
                    "truncated key-range length prefix".into(),
                ));
            }
            let mut len_bytes = [0u8; 4];
            // pesos-lint: allow(panic_freedom, "length prefix bounds-checked against bytes.len() above")
            len_bytes.copy_from_slice(&bytes[offset..offset + 4]);
            let len = u32::from_be_bytes(len_bytes) as usize;
            offset += 4;
            if offset + len > bytes.len() {
                return Err(KineticError::Malformed("truncated key-range entry".into()));
            }
            // pesos-lint: allow(panic_freedom, "entry length bounds-checked against bytes.len() above")
            keys.push(bytes[offset..offset + len].to_vec());
            offset += len;
        }
        Ok(keys)
    }

    /// Replaces the drive's accounts (administrative).
    pub fn replace_accounts(&self, accounts: Vec<AccountSpec>) -> Result<(), KineticError> {
        let mut cmd = self.next_command(MessageType::Security);
        cmd.body.security_accounts = accounts;
        Self::check_success(self.exchange(cmd)?).map(|_| ())
    }

    /// Runs device setup (cluster version change and/or erase).
    pub fn setup(&self, new_cluster_version: Option<u64>, erase: bool) -> Result<(), KineticError> {
        let mut cmd = self.next_command(MessageType::Setup);
        cmd.body.setup_new_cluster_version = new_cluster_version;
        cmd.body.setup_erase = erase;
        Self::check_success(self.exchange(cmd)?).map(|_| ())
    }

    /// Fetches the device log string.
    pub fn get_log(&self, log_type: &str) -> Result<String, KineticError> {
        let mut cmd = self.next_command(MessageType::GetLog);
        cmd.body.log_type = log_type.to_string();
        let resp = Self::check_success(self.exchange(cmd)?)?;
        String::from_utf8(resp.body.value.to_vec())
            .map_err(|_| KineticError::Malformed("log not UTF-8".into()))
    }

    /// Submits a PUT asynchronously; completion is reported via the handle.
    pub fn put_async(
        &self,
        key: &[u8],
        value: impl Into<Payload>,
        expected_version: &[u8],
        new_version: &[u8],
        force: bool,
    ) -> Result<AsyncHandle, KineticError> {
        let mut cmd = self.next_command(MessageType::Put);
        cmd.body = CommandBody {
            key: key.to_vec(),
            value: value.into(),
            db_version: expected_version.to_vec(),
            new_version: new_version.to_vec(),
            force,
            ..CommandBody::default()
        };
        self.submit_async(cmd)
    }

    /// Submits a DELETE asynchronously.
    pub fn delete_async(
        &self,
        key: &[u8],
        expected_version: &[u8],
        force: bool,
    ) -> Result<AsyncHandle, KineticError> {
        let mut cmd = self.next_command(MessageType::Delete);
        cmd.body.key = key.to_vec();
        cmd.body.db_version = expected_version.to_vec();
        cmd.body.force = force;
        self.submit_async(cmd)
    }

    fn submit_async(&self, command: Command) -> Result<AsyncHandle, KineticError> {
        // Sealed on the submitting thread (the vectored seal is the only
        // full pass over the frame); the service thread just exchanges it.
        let envelope = Envelope::seal_vectored(self.config.identity, &self.mac_key, command);
        let (done_tx, done_rx) = bounded(1);
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.job_tx
            .send((envelope, done_tx))
            .map_err(|_| KineticError::ConnectionClosed)?;
        Ok(AsyncHandle { rx: done_rx })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::{DriveConfig, Permission};

    fn connected() -> (Arc<KineticDrive>, KineticClient) {
        let drive = Arc::new(KineticDrive::new(DriveConfig::simulator("kd-c")));
        let client = KineticClient::connect(Arc::clone(&drive), ClientConfig::factory_default())
            .expect("connect");
        (drive, client)
    }

    #[test]
    fn connect_validates_credentials() {
        let drive = Arc::new(KineticDrive::new(DriveConfig::simulator("kd-x")));
        let mut cfg = ClientConfig::factory_default();
        cfg.secret = b"wrong".to_vec();
        assert!(KineticClient::connect(drive, cfg).is_err());
    }

    #[test]
    fn put_get_delete_cycle() {
        let (_drive, client) = connected();
        client
            .put(b"user/1", b"alice".to_vec(), b"", b"v1", false)
            .unwrap();
        let (value, version) = client.get(b"user/1").unwrap();
        assert_eq!(value, b"alice");
        assert_eq!(version, b"v1");
        client.delete(b"user/1", b"v1", false).unwrap();
        assert_eq!(client.get(b"user/1"), Err(KineticError::NotFound));
    }

    #[test]
    fn version_conflicts_surface() {
        let (_drive, client) = connected();
        client.put(b"k", b"v1".to_vec(), b"", b"1", false).unwrap();
        let err = client
            .put(b"k", b"v2".to_vec(), b"wrong", b"2", false)
            .unwrap_err();
        assert!(matches!(
            err,
            KineticError::Rejected {
                code: StatusCode::VersionMismatch,
                ..
            }
        ));
    }

    #[test]
    fn key_range_lists_keys() {
        let (_drive, client) = connected();
        for k in ["p/1", "p/2", "q/1"] {
            client
                .put(k.as_bytes(), b"v".to_vec(), b"", b"1", false)
                .unwrap();
        }
        let keys = client.key_range(b"p/", b"p/~", 100).unwrap();
        assert_eq!(keys, vec![b"p/1".to_vec(), b"p/2".to_vec()]);
        assert!(client.key_range(b"z", b"zz", 10).unwrap().is_empty());
        // A zero limit means "no results", never the drive's default page.
        assert!(client.key_range(b"p/", b"p/~", 0).unwrap().is_empty());
    }

    #[test]
    fn zero_byte_object_round_trips() {
        // Regression: a zero-length payload must stay a present, zero-length
        // object through the put/get cycle — the old encoder dropped the
        // empty value field, so presence depended on the payload size.
        let (_drive, client) = connected();
        client
            .put(b"empty/object", Vec::new(), b"", b"v1", false)
            .unwrap();
        let (value, version) = client.get(b"empty/object").unwrap();
        assert!(value.is_empty());
        assert_eq!(version, b"v1");
        // Distinct from a missing key.
        assert_eq!(client.get(b"empty/missing"), Err(KineticError::NotFound));
        client.delete(b"empty/object", b"v1", false).unwrap();
        assert_eq!(client.get(b"empty/object"), Err(KineticError::NotFound));
    }

    #[test]
    fn async_put_completes() {
        let (drive, client) = connected();
        let handles: Vec<AsyncHandle> = (0..20)
            .map(|i| {
                client
                    .put_async(
                        format!("async/{i}").as_bytes(),
                        vec![i as u8; 64],
                        b"",
                        b"1",
                        false,
                    )
                    .unwrap()
            })
            .collect();
        for h in handles {
            let resp = h.wait().unwrap();
            assert_eq!(resp.status.code, StatusCode::Success);
        }
        assert_eq!(drive.key_count(), 20);
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    fn async_delete_completes() {
        let (_drive, client) = connected();
        client
            .put(b"gone", b"v".to_vec(), b"", b"1", false)
            .unwrap();
        let h = client.delete_async(b"gone", b"", true).unwrap();
        assert_eq!(h.wait().unwrap().status.code, StatusCode::Success);
        assert_eq!(client.get(b"gone"), Err(KineticError::NotFound));
    }

    #[test]
    fn admin_operations_via_client() {
        let (_drive, client) = connected();
        // Take exclusive control like the Pesos bootstrap does.
        client
            .replace_accounts(vec![AccountSpec {
                identity: 7,
                secret: b"pesos".to_vec(),
                permissions: Permission::all(),
            }])
            .unwrap();
        // The old session's credentials stop working.
        assert!(client.noop().is_err());
    }

    #[test]
    fn getlog_and_setup() {
        let (drive, client) = connected();
        let log = client.get_log("utilization").unwrap();
        assert!(log.contains("id=kd-c"));
        client.put(b"k", b"v".to_vec(), b"", b"1", false).unwrap();
        client.setup(None, true).unwrap();
        assert_eq!(drive.key_count(), 0);
    }

    #[test]
    fn offline_drive_errors() {
        let (drive, client) = connected();
        drive.set_online(false);
        assert!(client.noop().is_err());
        assert!(client.get(b"k").is_err());
    }
}
