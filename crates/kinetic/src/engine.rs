//! The key-value engine inside a Kinetic drive.
//!
//! Real Kinetic drives run a LevelDB-backed key-value store on their SoC.
//! The engine here keeps the same externally visible semantics: byte-string
//! keys ordered lexicographically, versioned entries with compare-and-swap
//! semantics on PUT and DELETE (unless `force` is set), inclusive range
//! scans, and capacity accounting against the advertised drive size.

use std::collections::BTreeMap;

use crate::error::KineticError;
use crate::protocol::Payload;

/// A stored entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredEntry {
    /// The value bytes (shared, immutable).
    pub value: Payload,
    /// The entry version (opaque bytes chosen by the writer).
    pub version: Vec<u8>,
}

/// Counters describing engine activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of keys currently stored.
    pub keys: u64,
    /// Total bytes of keys and values currently stored.
    pub used_bytes: u64,
    /// Total PUT operations served.
    pub puts: u64,
    /// Total GET operations served.
    pub gets: u64,
    /// Total DELETE operations served.
    pub deletes: u64,
    /// Total range scans served.
    pub scans: u64,
}

/// The versioned key-value engine.
#[derive(Debug)]
pub struct DriveEngine {
    entries: BTreeMap<Vec<u8>, StoredEntry>,
    capacity_bytes: u64,
    used_bytes: u64,
    stats: EngineStats,
}

impl DriveEngine {
    /// Creates an engine with the given capacity in bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        DriveEngine {
            entries: BTreeMap::new(),
            capacity_bytes,
            used_bytes: 0,
            stats: EngineStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently used by keys and values.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Fraction of capacity in use.
    pub fn utilization(&self) -> f64 {
        if self.capacity_bytes == 0 {
            return 0.0;
        }
        self.used_bytes as f64 / self.capacity_bytes as f64
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Activity counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            keys: self.entries.len() as u64,
            used_bytes: self.used_bytes,
            ..self.stats
        }
    }

    fn entry_size(key: &[u8], value: &[u8]) -> u64 {
        (key.len() + value.len()) as u64
    }

    /// Stores `value` under `key`.
    ///
    /// Unless `force` is true the currently stored version must equal
    /// `expected_version` (empty means "no existing entry"), reproducing the
    /// Kinetic compare-and-swap PUT.
    pub fn put(
        &mut self,
        key: &[u8],
        value: impl Into<Payload>,
        expected_version: &[u8],
        new_version: Vec<u8>,
        force: bool,
    ) -> Result<(), KineticError> {
        self.stats.puts += 1;
        let value: Payload = value.into();
        let existing = self.entries.get(key);
        if !force {
            let actual = existing.map(|e| e.version.as_slice()).unwrap_or(&[]);
            if actual != expected_version {
                return Err(KineticError::VersionMismatch {
                    expected: expected_version.to_vec(),
                    actual: actual.to_vec(),
                });
            }
        }

        let new_size = Self::entry_size(key, &value);
        let old_size = existing
            .map(|e| Self::entry_size(key, &e.value))
            .unwrap_or(0);
        let projected = self.used_bytes - old_size + new_size;
        if projected > self.capacity_bytes {
            return Err(KineticError::NoSpace);
        }

        self.used_bytes = projected;
        self.entries.insert(
            key.to_vec(),
            StoredEntry {
                value,
                version: new_version,
            },
        );
        Ok(())
    }

    /// Retrieves the entry stored under `key`.
    pub fn get(&mut self, key: &[u8]) -> Result<StoredEntry, KineticError> {
        self.stats.gets += 1;
        self.entries.get(key).cloned().ok_or(KineticError::NotFound)
    }

    /// Deletes `key`. Unless `force` is set the stored version must match.
    pub fn delete(
        &mut self,
        key: &[u8],
        expected_version: &[u8],
        force: bool,
    ) -> Result<(), KineticError> {
        self.stats.deletes += 1;
        let existing = self.entries.get(key).ok_or(KineticError::NotFound)?;
        if !force && existing.version != expected_version {
            return Err(KineticError::VersionMismatch {
                expected: expected_version.to_vec(),
                actual: existing.version.clone(),
            });
        }
        let size = Self::entry_size(key, &existing.value);
        self.entries.remove(key);
        self.used_bytes -= size;
        Ok(())
    }

    /// Returns up to `max` keys in `[start, end]` (inclusive), in order.
    pub fn key_range(&mut self, start: &[u8], end: &[u8], max: usize) -> Vec<Vec<u8>> {
        self.stats.scans += 1;
        self.entries
            .range(start.to_vec()..=end.to_vec())
            .take(max)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Removes every entry (instant secure erase).
    pub fn erase(&mut self) {
        self.entries.clear();
        self.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DriveEngine {
        DriveEngine::new(1024 * 1024)
    }

    #[test]
    fn put_get_round_trip() {
        let mut e = engine();
        e.put(b"k1", b"v1".to_vec(), b"", b"1".to_vec(), false)
            .unwrap();
        let entry = e.get(b"k1").unwrap();
        assert_eq!(entry.value, b"v1");
        assert_eq!(entry.version, b"1");
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn get_missing_is_not_found() {
        let mut e = engine();
        assert_eq!(e.get(b"missing"), Err(KineticError::NotFound));
    }

    #[test]
    fn versioned_put_enforced() {
        let mut e = engine();
        e.put(b"k", b"v1".to_vec(), b"", b"1".to_vec(), false)
            .unwrap();
        // Wrong expected version rejected.
        let err = e
            .put(
                b"k",
                b"v2".to_vec(),
                b"0".to_vec().as_slice(),
                b"2".to_vec(),
                false,
            )
            .unwrap_err();
        assert!(matches!(err, KineticError::VersionMismatch { .. }));
        // Correct expected version accepted.
        e.put(b"k", b"v2".to_vec(), b"1", b"2".to_vec(), false)
            .unwrap();
        assert_eq!(e.get(b"k").unwrap().version, b"2");
        // Creating over an existing key with empty expected version fails.
        assert!(e
            .put(b"k", b"v3".to_vec(), b"", b"3".to_vec(), false)
            .is_err());
        // Force overrides.
        e.put(b"k", b"v3".to_vec(), b"", b"3".to_vec(), true)
            .unwrap();
        assert_eq!(e.get(b"k").unwrap().value, b"v3");
    }

    #[test]
    fn versioned_delete_enforced() {
        let mut e = engine();
        e.put(b"k", b"v".to_vec(), b"", b"7".to_vec(), false)
            .unwrap();
        assert!(matches!(
            e.delete(b"k", b"8", false),
            Err(KineticError::VersionMismatch { .. })
        ));
        e.delete(b"k", b"7", false).unwrap();
        assert_eq!(e.delete(b"k", b"7", false), Err(KineticError::NotFound));
        // Force delete ignores version.
        e.put(b"k", b"v".to_vec(), b"", b"9".to_vec(), false)
            .unwrap();
        e.delete(b"k", b"", true).unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn capacity_enforced_and_accounted() {
        let mut e = DriveEngine::new(20);
        e.put(b"a", vec![0u8; 10], b"", b"1".to_vec(), false)
            .unwrap();
        assert_eq!(e.used_bytes(), 11);
        assert_eq!(
            e.put(b"b", vec![0u8; 15], b"", b"1".to_vec(), false),
            Err(KineticError::NoSpace)
        );
        // Overwriting with a smaller value frees space.
        e.put(b"a", vec![0u8; 2], b"1", b"2".to_vec(), false)
            .unwrap();
        assert_eq!(e.used_bytes(), 3);
        e.put(b"b", vec![0u8; 15], b"", b"1".to_vec(), false)
            .unwrap();
        assert!(e.utilization() > 0.9);
        // Deleting restores space.
        e.delete(b"b", b"1", false).unwrap();
        assert_eq!(e.used_bytes(), 3);
    }

    #[test]
    fn key_range_scan() {
        let mut e = engine();
        for k in ["a", "b", "c", "d", "e"] {
            e.put(k.as_bytes(), b"v".to_vec(), b"", b"1".to_vec(), false)
                .unwrap();
        }
        assert_eq!(
            e.key_range(b"b", b"d", 10),
            vec![b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
        assert_eq!(e.key_range(b"a", b"e", 2).len(), 2);
        assert!(e.key_range(b"x", b"z", 10).is_empty());
    }

    #[test]
    fn erase_clears_everything() {
        let mut e = engine();
        for i in 0..10u8 {
            e.put(&[i], vec![i; 10], b"", b"1".to_vec(), false).unwrap();
        }
        e.erase();
        assert!(e.is_empty());
        assert_eq!(e.used_bytes(), 0);
        assert_eq!(e.get(&[0]), Err(KineticError::NotFound));
    }

    #[test]
    fn stats_track_operations() {
        let mut e = engine();
        e.put(b"k", b"v".to_vec(), b"", b"1".to_vec(), false)
            .unwrap();
        let _ = e.get(b"k");
        let _ = e.get(b"missing");
        let _ = e.delete(b"k", b"1", false);
        let _ = e.key_range(b"a", b"z", 10);
        let s = e.stats();
        assert_eq!(s.puts, 1);
        assert_eq!(s.gets, 2);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.scans, 1);
        assert_eq!(s.keys, 0);
    }
}
