//! Error type for the Kinetic substrate.

use std::fmt;

use crate::protocol::StatusCode;

/// Errors produced by drives and the client library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KineticError {
    /// The drive rejected the request; carries the protocol status.
    Rejected {
        /// Protocol-level status code.
        code: StatusCode,
        /// Human-readable detail from the drive.
        message: String,
    },
    /// The HMAC on a message did not verify.
    AuthenticationFailed,
    /// The identity is unknown to the drive or lacks the needed permission.
    NotAuthorized(String),
    /// A version precondition failed (compare-and-swap style PUT/DELETE).
    VersionMismatch { expected: Vec<u8>, actual: Vec<u8> },
    /// The requested key does not exist.
    NotFound,
    /// The message could not be decoded.
    Malformed(String),
    /// The drive is not reachable (simulated network/drive failure).
    DriveUnavailable(String),
    /// The client connection was closed.
    ConnectionClosed,
    /// The drive has no remaining capacity.
    NoSpace,
}

impl KineticError {
    /// Maps the error to the protocol status code reported to peers.
    pub fn status_code(&self) -> StatusCode {
        match self {
            KineticError::Rejected { code, .. } => *code,
            KineticError::AuthenticationFailed => StatusCode::HmacFailure,
            KineticError::NotAuthorized(_) => StatusCode::NotAuthorized,
            KineticError::VersionMismatch { .. } => StatusCode::VersionMismatch,
            KineticError::NotFound => StatusCode::NotFound,
            KineticError::Malformed(_) => StatusCode::InvalidRequest,
            KineticError::DriveUnavailable(_) => StatusCode::NotAttempted,
            KineticError::ConnectionClosed => StatusCode::NotAttempted,
            KineticError::NoSpace => StatusCode::NoSpace,
        }
    }
}

impl fmt::Display for KineticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KineticError::Rejected { code, message } => {
                write!(f, "rejected ({code:?}): {message}")
            }
            KineticError::AuthenticationFailed => write!(f, "message authentication failed"),
            KineticError::NotAuthorized(msg) => write!(f, "not authorized: {msg}"),
            KineticError::VersionMismatch { expected, actual } => write!(
                f,
                "version mismatch: expected {:?}, actual {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(actual)
            ),
            KineticError::NotFound => write!(f, "key not found"),
            KineticError::Malformed(msg) => write!(f, "malformed message: {msg}"),
            KineticError::DriveUnavailable(msg) => write!(f, "drive unavailable: {msg}"),
            KineticError::ConnectionClosed => write!(f, "connection closed"),
            KineticError::NoSpace => write!(f, "no space left on drive"),
        }
    }
}

impl std::error::Error for KineticError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_code_mapping() {
        assert_eq!(
            KineticError::AuthenticationFailed.status_code(),
            StatusCode::HmacFailure
        );
        assert_eq!(KineticError::NotFound.status_code(), StatusCode::NotFound);
        assert_eq!(
            KineticError::VersionMismatch {
                expected: vec![],
                actual: vec![]
            }
            .status_code(),
            StatusCode::VersionMismatch
        );
        assert_eq!(KineticError::NoSpace.status_code(), StatusCode::NoSpace);
    }

    #[test]
    fn display_is_informative() {
        let e = KineticError::VersionMismatch {
            expected: b"1".to_vec(),
            actual: b"2".to_vec(),
        };
        let s = e.to_string();
        assert!(s.contains('1') && s.contains('2'));
    }
}
