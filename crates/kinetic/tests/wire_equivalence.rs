//! Property tests: the vectored wire path is byte-identical to the legacy
//! encoders for every command shape.
//!
//! `Command::encode` and `Envelope::seal_with`/`Envelope::encode` are kept
//! as deliberately independent implementations — the monolithic encoders
//! the vectored path replaced — precisely so they can serve as the
//! equivalence oracle here: for arbitrary commands, the scatter-gather
//! writer must produce the same command bytes, the same frame HMAC and the
//! same materialized frame, and the frame must still decode and verify
//! through the legacy byte path.

use pesos_crypto::HmacKey;
use pesos_kinetic::{
    AccountSpec, Command, Envelope, MessageType, Payload, ResponseStatus, StatusCode,
};
use proptest::prelude::*;

/// Small deterministic expander turning one seed into an arbitrary command
/// shape (SplitMix64; independent of the codec under test).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A byte vector of length `0..=max` — zero-length comes up often, so
    /// the empty-but-present encoding is exercised constantly.
    fn bytes(&mut self, max: usize) -> Vec<u8> {
        let len = (self.next() as usize) % (max + 1);
        (0..len).map(|_| self.next() as u8).collect()
    }

    fn ascii(&mut self, max: usize) -> String {
        self.bytes(max)
            .into_iter()
            .map(|b| (b'a' + b % 26) as char)
            .collect()
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn arbitrary_command(seed: u64) -> Command {
    const TYPES: [MessageType; 11] = [
        MessageType::Put,
        MessageType::Get,
        MessageType::Delete,
        MessageType::GetKeyRange,
        MessageType::Noop,
        MessageType::Security,
        MessageType::Setup,
        MessageType::GetLog,
        MessageType::PeerToPeerPush,
        MessageType::Flush,
        MessageType::Response,
    ];
    const CODES: [StatusCode; 9] = [
        StatusCode::Success,
        StatusCode::NotFound,
        StatusCode::VersionMismatch,
        StatusCode::NotAuthorized,
        StatusCode::HmacFailure,
        StatusCode::InvalidRequest,
        StatusCode::NotAttempted,
        StatusCode::NoSpace,
        StatusCode::InternalError,
    ];

    let mut g = Gen(seed);
    let mut cmd = Command::request(TYPES[(g.next() as usize) % TYPES.len()]);
    cmd.connection_id = g.next();
    cmd.sequence = g.next() % 1_000_000;
    cmd.cluster_version = g.next() % 16;
    cmd.ack_sequence = g.next() % 1_000_000;

    let b = &mut cmd.body;
    b.key = g.bytes(32);
    b.value = Payload::from(g.bytes(600));
    b.db_version = g.bytes(6);
    b.new_version = g.bytes(6);
    b.force = g.flag();
    b.range_start = g.bytes(12);
    b.range_end = g.bytes(12);
    // Often zero: the explicit-zero encoding must round-trip.
    b.max_returned = if g.flag() { 0 } else { g.next() as u32 % 1000 };
    b.p2p_target = g.ascii(8);
    b.setup_new_cluster_version = g.flag().then(|| g.next());
    b.setup_erase = g.flag();
    b.log_type = g.ascii(10);
    for _ in 0..g.next() % 3 {
        let spec = AccountSpec {
            identity: g.next() as i64,
            secret: g.bytes(20),
            permissions: g.next() as u32 & 0xff,
        };
        b.security_accounts.push(spec);
    }

    cmd.status = ResponseStatus {
        code: CODES[(g.next() as usize) % CODES.len()],
        message: g.ascii(24),
    };
    cmd
}

proptest! {
    #[test]
    fn vectored_command_encoding_is_byte_identical_to_legacy(seed in any::<u64>()) {
        let cmd = arbitrary_command(seed);
        let legacy = cmd.encode();
        let vectored = cmd.encode_vectored();
        prop_assert_eq!(
            vectored.to_bytes(),
            legacy.clone(),
            "vectored chunks diverge from Command::encode for {:?}",
            cmd.message_type
        );
        prop_assert_eq!(vectored.encoded_len(), legacy.len());
        // Decoding the (shared) encoding reproduces the command, including
        // zero-length value/db_version/new_version and max_returned == 0.
        prop_assert_eq!(Command::decode(&legacy).unwrap(), cmd);
    }

    #[test]
    fn vectored_envelope_is_byte_identical_to_legacy(seed in any::<u64>()) {
        let cmd = arbitrary_command(seed);
        let key = HmacKey::new(&seed.to_be_bytes());
        let identity = (seed as i64) % 1000 - 500;

        let legacy = Envelope::seal_with(identity, &key, &cmd);
        let vectored = Envelope::seal_vectored(identity, &key, cmd);

        // Same frame HMAC, same materialized frame bytes.
        prop_assert_eq!(vectored.hmac().to_vec(), legacy.hmac.clone());
        prop_assert_eq!(vectored.encode(), legacy.encode());

        // The folded verification agrees with the full one.
        prop_assert!(vectored.verified_by(&key));
        let wrong = HmacKey::new(&(seed ^ 1).to_be_bytes());
        prop_assert!(!vectored.verified_by(&wrong));

        // A materialized vectored frame travels the legacy byte path
        // unchanged: decode, full HMAC verification, command round-trip.
        let decoded = Envelope::decode(&vectored.encode()).unwrap();
        prop_assert_eq!(decoded.identity, identity);
        prop_assert_eq!(
            decoded.open_with(&key).unwrap(),
            vectored.into_command()
        );
    }
}
